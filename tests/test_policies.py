"""Unit tests for the reputation policies."""

import pytest

from repro.core.node import BarterCastNode
from repro.core.policies import BanPolicy, NoPolicy, RankPolicy
from repro.core.reputation import MB
from repro.sim.rng import RngRegistry


@pytest.fixture
def rng():
    return RngRegistry(5).stream("policy")


@pytest.fixture
def node():
    """A node that loves 'good', hates 'bad', ignores 'stranger'."""
    n = BarterCastNode("me")
    n.record_download("good", 800 * MB, now=1.0)
    n.record_upload("bad", 800 * MB, now=1.0)
    n.graph.add_node("stranger")
    return n


class TestNoPolicy:
    def test_allows_everyone(self, node):
        p = NoPolicy()
        assert p.allows(node, "bad")
        assert p.allows(None, "anyone")

    def test_order_is_permutation(self, node, rng):
        p = NoPolicy()
        order = p.order_optimistic(node, ["a", "b", "c"], rng)
        assert sorted(order) == ["a", "b", "c"]

    def test_name(self):
        assert NoPolicy().name == "none"


class TestRankPolicy:
    def test_allows_everyone(self, node):
        assert RankPolicy().allows(node, "bad")

    def test_orders_by_reputation(self, node, rng):
        p = RankPolicy()
        order = p.order_optimistic(node, ["bad", "stranger", "good"], rng)
        assert order == ["good", "stranger", "bad"]

    def test_without_node_random_permutation(self, rng):
        p = RankPolicy()
        order = p.order_optimistic(None, ["a", "b"], rng)
        assert sorted(order) == ["a", "b"]

    def test_empty_candidates(self, node, rng):
        assert RankPolicy().order_optimistic(node, [], rng) == []

    def test_ties_eventually_rotate(self, node, rng):
        # Strangers tie at reputation 0; the shuffle should produce both
        # orders across repeated rotations.
        node.graph.add_node("s2")
        p = RankPolicy()
        firsts = {
            p.order_optimistic(node, ["stranger", "s2"], rng)[0] for _ in range(50)
        }
        assert firsts == {"stranger", "s2"}


class TestBanPolicy:
    def test_bans_below_delta(self, node):
        p = BanPolicy(delta=-0.5)
        assert not p.allows(node, "bad")
        assert p.allows(node, "good")
        assert p.allows(node, "stranger")  # newcomers are not banned

    def test_threshold_inclusive(self, node):
        # reputation exactly at delta is allowed (>= delta).
        p = BanPolicy(delta=node.reputation_of("bad"))
        assert p.allows(node, "bad")

    def test_without_node_allows(self):
        assert BanPolicy(-0.5).allows(None, "x")

    def test_banned_excluded_from_optimistic(self, node, rng):
        p = BanPolicy(delta=-0.5)
        order = p.order_optimistic(node, ["bad", "good", "stranger"], rng)
        assert "bad" not in order
        assert set(order) == {"good", "stranger"}

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            BanPolicy(delta=0.5)
        with pytest.raises(ValueError):
            BanPolicy(delta=-1.5)
        BanPolicy(delta=0.0)
        BanPolicy(delta=-1.0)

    def test_stricter_delta_bans_less(self, node):
        """A more negative delta is *more lenient* (harder to cross)."""
        mild = BanPolicy(delta=-0.3)
        strict_threshold = BanPolicy(delta=-0.95)
        assert not mild.allows(node, "bad")
        # -0.95 is beyond what 800 MB imbalance produces: still allowed.
        assert node.reputation_of("bad") > -0.95
        assert strict_threshold.allows(node, "bad")
