"""Tests for the observability subsystem (metrics, traces, manifests).

Covers the registry semantics, the null-object disabled path, trace JSONL
schema round-trips, sampling determinism, manifest content, and the
headline guarantee: a fully instrumented run produces numerically
identical figure series to an uninstrumented one.
"""

import io
import json
import math

import numpy as np
import pytest

from repro.experiments import ScenarioConfig, run_fig1
from repro.obs import (
    MANIFEST_SCHEMA,
    NULL_METRICS,
    NULL_OBS,
    NULL_TRACER,
    TRACE_SCHEMA,
    ManifestBuilder,
    MetricsRegistry,
    Observability,
    TraceEmitter,
    make_observability,
    parse_sample_spec,
    read_manifest,
    read_trace,
)
from repro.obs.report import render_report


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("msgs")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.value("msgs") == 5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("msgs")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("size")
        g.set(7)
        g.set(3)
        g.inc(2)
        assert g.value == 5


class TestHistogramTimer:
    def test_histogram_stats(self):
        h = MetricsRegistry().histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 4.0

    def test_histogram_empty_quantile_nan(self):
        h = MetricsRegistry().histogram("lat")
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.mean)

    def test_histogram_buckets(self):
        h = MetricsRegistry().histogram("lat", bounds=[1.0, 10.0])
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]

    def test_histogram_bounds_must_be_sorted(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("lat", bounds=[10.0, 1.0])

    def test_reservoir_deterministic_across_registries(self):
        a = MetricsRegistry().histogram("x")
        b = MetricsRegistry().histogram("x")
        values = [float(i % 37) for i in range(5000)]
        for v in values:
            a.observe(v)
            b.observe(v)
        assert a.quantile(0.5) == b.quantile(0.5)
        assert a.snapshot() == b.snapshot()

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        t = reg.timer("work_s")
        with t:
            pass
        t.observe(0.5)
        assert t.histogram.count == 2
        assert t.histogram.max >= 0.5

    def test_timer_reentrant(self):
        t = MetricsRegistry().timer("work_s")
        with t:
            with t:
                pass
        assert t.histogram.count == 2


class TestRegistry:
    def test_memoizes_instruments(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1)
        reg.timer("t").observe(0.1)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2.0}
        assert snap["g"] == {"type": "gauge", "value": 1.0}
        assert snap["t"]["type"] == "timer"
        assert snap["t"]["count"] == 1
        assert json.dumps(snap)  # JSON-safe

    def test_null_registry_is_noop(self):
        assert not NULL_METRICS.enabled
        c = NULL_METRICS.counter("anything")
        c.inc(100)
        assert c.value == 0
        NULL_METRICS.gauge("g").set(5)
        with NULL_METRICS.timer("t"):
            pass
        h = NULL_METRICS.histogram("h")
        h.observe(1.0)
        assert h.count == 0
        assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")


class TestTrace:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "trace.jsonl"
        with TraceEmitter(path, seed=7) as tracer:
            cat = tracer.category("bt.transfer")
            cat.emit("piece", sim_time=60.0, attrs={"up": 1, "bytes": 4096.0})
            cat.emit("piece", sim_time=120.0)
        header, events = read_trace(path)
        assert header["schema"] == TRACE_SCHEMA
        assert header["seed"] == 7
        assert len(events) == 2
        first = events[0]
        assert first["seq"] == 1
        assert first["cat"] == "bt.transfer"
        assert first["name"] == "piece"
        assert first["sim"] == 60.0
        assert first["dur"] is None
        assert first["attrs"] == {"up": 1, "bytes": 4096.0}
        assert events[1]["seq"] == 2

    def test_span_records_duration(self):
        buf = io.StringIO()
        tracer = TraceEmitter(buf)
        with tracer.span("rep.kernel", "batch", sim_time=5.0):
            pass
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert lines[1]["dur"] is not None
        assert lines[1]["dur"] >= 0.0

    def test_sampling_deterministic(self):
        def kept(seed):
            tracer = TraceEmitter(io.StringIO(), default_rate=0.3, seed=seed)
            cat = tracer.category("bt.round")
            return [cat.emit(f"e{i}") for i in range(200)]

        assert kept(11) == kept(11)
        assert kept(11) != kept(12)
        rate = sum(kept(11)) / 200
        assert 0.1 < rate < 0.5

    def test_rate_zero_and_one(self):
        tracer = TraceEmitter(
            io.StringIO(), sample_rates={"off": 0.0}, default_rate=1.0
        )
        assert not tracer.category("off").emit("x")
        assert tracer.category("on").emit("x")
        assert tracer.records_written == 1
        assert tracer.records_sampled_out == 1

    def test_read_trace_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "something-else"}\n')
        with pytest.raises(ValueError):
            read_trace(path)

    def test_null_tracer_is_noop(self):
        assert not NULL_TRACER.enabled
        assert not NULL_TRACER.emit("cat", "name")
        with NULL_TRACER.span("cat", "name"):
            pass
        assert NULL_TRACER.records_written == 0


class TestObservabilityBundle:
    def test_null_obs_disabled(self):
        assert not NULL_OBS.enabled
        NULL_OBS.close()  # no-op

    def test_make_observability_defaults_to_null(self):
        assert make_observability() is NULL_OBS

    def test_make_observability_metrics_only(self):
        obs = make_observability(metrics=True)
        assert obs.metrics.enabled
        assert not obs.tracer.enabled
        assert obs.enabled

    def test_make_observability_trace(self, tmp_path):
        obs = make_observability(
            trace_path=tmp_path / "t.jsonl", trace_sample="0.5,bt.transfer=0.1"
        )
        assert obs.tracer.enabled
        assert obs.tracer.default_rate == 0.5
        assert obs.tracer.sample_rates == {"bt.transfer": 0.1}
        obs.close()

    def test_parse_sample_spec(self):
        assert parse_sample_spec("0.1") == (0.1, {})
        assert parse_sample_spec("0.05,bt.transfer=0.01,sim.event=0") == (
            0.05,
            {"bt.transfer": 0.01, "sim.event": 0.0},
        )
        with pytest.raises(ValueError):
            parse_sample_spec("1.5")
        with pytest.raises(ValueError):
            parse_sample_spec("bt.transfer=nope")


class TestManifest:
    def test_manifest_content(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("bc.messages_sent").inc(3)
        builder = ManifestBuilder(
            "fig1", args={"profile": "tiny"}, profile="tiny", seed=3
        )
        with builder.phase("simulate"):
            pass
        builder.note("note_key", {"nested": (1, 2)})
        path = builder.write(tmp_path, metrics=reg, tracer=NULL_TRACER)
        doc = read_manifest(path)
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["command"] == "fig1"
        assert doc["profile"] == "tiny"
        assert doc["seed"] == 3
        assert doc["args"] == {"profile": "tiny"}
        assert "simulate" in doc["wall_seconds_by_phase"]
        assert doc["metrics"]["bc.messages_sent"]["value"] == 3.0
        assert doc["trace"] is None
        assert doc["extra"]["note_key"] == {"nested": [1, 2]}
        assert doc["package_version"]
        assert doc["python"]

    def test_manifest_dir_vs_file_destination(self, tmp_path):
        builder = ManifestBuilder("fig2")
        p1 = builder.write(tmp_path / "out")
        assert p1.name == "run_manifest.json"
        p2 = builder.write(tmp_path / "custom.json")
        assert p2.name == "custom.json"
        assert read_manifest(p2)["command"] == "fig2"

    def test_faults_section_present_only_when_set(self, tmp_path):
        from repro.faults import FaultConfig

        plain = ManifestBuilder("fig1")
        assert "faults" not in read_manifest(plain.write(tmp_path / "plain"))

        faulty = ManifestBuilder("fig1")
        faulty.set_faults(FaultConfig(loss=0.2, churn_rate=1.5, delay_max=30.0))
        doc = read_manifest(faulty.write(tmp_path / "faulty"))
        assert doc["faults"]["loss"] == 0.2
        assert doc["faults"]["churn_rate"] == 1.5
        assert doc["faults"]["delay_max"] == 30.0
        assert doc["faults"]["duplicate"] == 0.0

    def test_read_manifest_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError):
            read_manifest(path)


class TestReport:
    def test_disabled_note(self):
        assert "disabled" in render_report(NULL_METRICS)

    def test_report_sections(self):
        reg = MetricsRegistry()
        reg.counter("bc.messages_sent").inc(100)
        reg.gauge("rep.cache.hits").set(90)
        reg.gauge("rep.cache.misses").set(10)
        reg.counter("sim.events").inc(1000)
        reg.timer("sim.dispatch_s").observe(0.5)
        reg.counter("rep.kernel.calls").inc(7)
        reg.counter("rep.kernel.targets").inc(21)
        out = render_report(reg)
        assert "bc.messages_sent" in out
        assert "90.0%" in out  # cache hit rate
        assert "2,000 events/sec" in out
        assert "7 invocations" in out
        assert "21 targets" in out


class TestInstrumentedRunIdentical:
    def test_fig1_tiny_bit_identical(self, tmp_path):
        scenario = ScenarioConfig.tiny(seed=3)
        plain = run_fig1(scenario)
        obs = make_observability(
            metrics=True,
            trace_path=tmp_path / "trace.jsonl",
            trace_sample="0.5,bt.transfer=0.25",
            seed=3,
        )
        instrumented = run_fig1(scenario, obs=obs)
        obs.close()

        np.testing.assert_array_equal(
            plain.sharer_reputation, instrumented.sharer_reputation
        )
        np.testing.assert_array_equal(
            plain.freerider_reputation, instrumented.freerider_reputation
        )
        np.testing.assert_array_equal(
            plain.net_contribution_gb, instrumented.net_contribution_gb
        )
        np.testing.assert_array_equal(
            plain.system_reputation, instrumented.system_reputation
        )
        assert plain.spearman == instrumented.spearman
        assert plain.pearson == instrumented.pearson

        # The instrumented leg actually recorded something.
        reg = obs.metrics
        assert reg.value("sim.events") > 0
        assert reg.value("bt.rounds") > 0
        assert reg.value("bc.messages_sent") > 0
        header, events = read_trace(tmp_path / "trace.jsonl")
        assert header["schema"] == TRACE_SCHEMA
        assert events
        cats = {e["cat"] for e in events}
        assert "sim.event" in cats

    def test_trace_sampling_reproducible_across_runs(self, tmp_path):
        def run(path):
            obs = make_observability(trace_path=path, trace_sample=0.3, seed=9)
            run_fig1(ScenarioConfig.tiny(seed=3), obs=obs)
            obs.close()
            _, events = read_trace(path)
            return [(e["cat"], e["name"], e["sim"]) for e in events]

        assert run(tmp_path / "a.jsonl") == run(tmp_path / "b.jsonl")


class TestLazyTraceAttrs:
    """sample()/emit_sampled() must share emit()'s decision stream."""

    def _collect(self, tmp_path, name, use_split):
        path = tmp_path / f"{name}.jsonl"
        obs = make_observability(trace_path=path, trace_sample=0.4, seed=11)
        cat = obs.tracer.category("bt.transfer")
        for i in range(200):
            if use_split:
                if cat.sample():
                    cat.emit_sampled("piece", float(i), attrs={"i": i})
            else:
                cat.emit("piece", float(i), attrs={"i": i})
        sampled_out = obs.tracer.records_sampled_out
        obs.close()
        _, events = read_trace(path)
        return [(e["name"], e["sim"], e["attrs"]) for e in events], sampled_out

    def test_split_form_keeps_identical_events(self, tmp_path):
        eager, out_eager = self._collect(tmp_path, "eager", use_split=False)
        lazy, out_lazy = self._collect(tmp_path, "lazy", use_split=True)
        assert eager == lazy
        assert out_eager == out_lazy > 0
        assert 0 < len(eager) < 200  # the gate actually dropped some

    def test_null_category_sample_is_false(self):
        from repro.obs import NULL_TRACER

        cat = NULL_TRACER.category("anything")
        assert cat.sample() is False
        cat.emit_sampled("never", 0.0)  # must be a harmless no-op


class TestHistogramReservoirMerge:
    """Satellite of the telemetry PR: merged worker reservoirs give real
    quantiles instead of NaN placeholders."""

    def test_snapshot_reservoir_opt_in(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0)
        assert "reservoir" not in h.snapshot()
        assert h.snapshot(include_reservoir=True)["reservoir"] == [1.0]

    def test_merged_quantiles_exact_in_complete_regime(self):
        """Worker counts below the reservoir size merge exactly: the
        parent's quantiles equal a serial run over the union stream."""
        serial = MetricsRegistry().histogram("lat")
        parent = MetricsRegistry().histogram("lat")
        rng_values = [
            [float((7 * i + w) % 101) for i in range(300)] for w in range(3)
        ]
        for w, values in enumerate(rng_values):
            worker = MetricsRegistry().histogram("lat")
            for v in values:
                worker.observe(v)
                serial.observe(v)
            parent.merge_snapshot_dict(worker.snapshot(include_reservoir=True))
        for q in (0.1, 0.5, 0.9, 0.95, 0.99):
            assert parent.quantile(q) == serial.quantile(q)
        assert parent.count == serial.count == 900
        assert parent.total == serial.total

    def test_merge_without_reservoir_keeps_exact_scalars(self):
        parent = MetricsRegistry().histogram("lat")
        worker = MetricsRegistry().histogram("lat")
        for v in (1.0, 2.0, 3.0):
            worker.observe(v)
        parent.merge_snapshot_dict(worker.snapshot())  # compact snapshot
        assert parent.count == 3
        assert parent.total == 6.0
        assert math.isnan(parent.quantile(0.5))  # no samples shipped

    def test_overfull_merge_bounded_and_deterministic(self):
        def build():
            parent = MetricsRegistry().histogram("lat")
            for w in range(3):
                worker = MetricsRegistry().histogram("lat")
                for i in range(600):  # 1800 total > 1024 reservoir size
                    worker.observe(float((11 * i + w) % 997))
                parent.merge_snapshot_dict(
                    worker.snapshot(include_reservoir=True)
                )
            return parent
        a, b = build(), build()
        assert a.count == 1800
        assert len(a._reservoir) == a._reservoir_size
        assert a.quantile(0.5) == b.quantile(0.5)  # name-seeded merge RNG
        assert 0.0 <= a.quantile(0.5) <= 997.0

    def test_parallel_worker_quantiles_render_in_report(self):
        """The end-to-end satellite claim: a merged registry's timers
        render real quantile values, not the '-' placeholder."""
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        for i in range(50):
            worker.timer("bt.round_s").observe(0.001 * (i + 1))
        parent.merge_snapshot(worker.snapshot(include_reservoir=True))
        out = render_report(parent)
        row = next(l for l in out.splitlines() if "bt.round_s" in l)
        assert "-" not in row.replace("bt.round_s", "")


class TestManifestReport:
    """repro report: rendering stored manifests, degrading gracefully."""

    def _doc(self, **overrides):
        doc = {
            "schema": MANIFEST_SCHEMA,
            "command": "fig2",
            "profile": "tiny",
            "seed": 3,
            "wall_seconds_total": 2.5,
            "wall_seconds_by_phase": {"fig2": 2.0, "export": 0.5},
        }
        doc.update(overrides)
        return doc

    def test_minimal_manifest_renders(self):
        from repro.obs.report import render_manifest_report

        out = render_manifest_report(self._doc())
        assert "== Run: fig2 ==" in out
        assert "profile tiny" in out and "seed 3" in out
        assert "2.00s" in out  # phase table

    def test_missing_provenance_and_network_sections(self):
        from repro.obs.report import render_manifest_report

        reg = MetricsRegistry()
        reg.counter("bc.messages_sent").inc(10)
        out = render_manifest_report(self._doc(metrics=reg.snapshot()))
        assert "provenance" not in out
        assert "network" not in out  # no net.* counters -> section hidden
        assert "bc.messages_sent" in out

    def test_zero_sample_histogram_nan_safe(self):
        from repro.obs.report import render_metrics_snapshot

        snap = {
            "empty_s": {"type": "timer", "count": 0, "total": 0.0},
            "merged_s": {
                "type": "timer", "count": 5, "total": 1.0,
                "mean": 0.2, "p95": float("nan"), "max": float("nan"),
            },
        }
        out = render_metrics_snapshot(snap)
        assert "empty_s" not in out  # zero-count timers are elided
        row = next(l for l in out.splitlines() if "merged_s" in l)
        assert "-" in row  # NaN quantiles render as placeholders

    def test_fmt_seconds_none_safe(self):
        from repro.obs.report import _fmt_seconds

        assert _fmt_seconds(None) == "-"
        assert _fmt_seconds(float("nan")) == "-"
        assert _fmt_seconds(1.5) == "1.50s"
        assert _fmt_seconds(0.0015) == "1.50ms"

    def test_profile_and_timeseries_sections(self):
        from repro.obs.profile import Profiler
        from repro.obs.report import render_manifest_report

        prof = Profiler()
        with prof.phase("bt.round"):
            pass
        prof.observe_kernel("maxflow_two_hop_batch", 1e-4)
        ts = {
            "interval_s": None,
            "series": [{
                "label": "fig2/rank", "samples": 12, "samples_dropped": 0,
                "final": {"t": 86400.0, "coverage": 0.5,
                          "rank_inversion_rate": 0.0, "cache_hit_rate": 0.9},
            }],
        }
        out = render_manifest_report(
            self._doc(extra={"profile": prof.summary(), "timeseries": ts})
        )
        assert "== Profile ==" in out
        assert "bt.round" in out and "maxflow_two_hop_batch" in out
        assert "== Timeseries ==" in out
        assert "fig2/rank" in out and "0.500" in out
