"""Unit tests for BarterCast messages and record selection."""

import math

import pytest

from repro.core.history import PrivateHistory
from repro.core.messages import (
    BarterCastMessage,
    HistoryRecord,
    make_message,
    select_records,
)


class TestHistoryRecord:
    def test_sane_record(self):
        assert HistoryRecord("p", 10.0, 5.0).is_sane()

    def test_negative_insane(self):
        assert not HistoryRecord("p", -1.0, 5.0).is_sane()
        assert not HistoryRecord("p", 1.0, -5.0).is_sane()

    def test_nan_insane(self):
        assert not HistoryRecord("p", math.nan, 0.0).is_sane()
        assert not HistoryRecord("p", 0.0, math.nan).is_sane()

    def test_inf_insane(self):
        assert not HistoryRecord("p", math.inf, 0.0).is_sane()

    def test_frozen(self):
        rec = HistoryRecord("p", 1.0, 2.0)
        with pytest.raises(AttributeError):
            rec.uploaded = 5.0


class TestMessage:
    def test_records_normalized_to_tuple(self):
        msg = BarterCastMessage("s", 0.0, records=[HistoryRecord("p", 1.0, 2.0)])
        assert isinstance(msg.records, tuple)
        assert msg.num_records == 1

    def test_sane_records_filters_malformed(self):
        msg = BarterCastMessage(
            "s",
            0.0,
            records=(
                HistoryRecord("p", 1.0, 2.0),
                HistoryRecord("q", -1.0, 2.0),  # negative
                HistoryRecord("s", 1.0, 2.0),  # self-referential
            ),
        )
        sane = msg.sane_records()
        assert [r.counterparty for r in sane] == ["p"]

    def test_sane_records_drops_non_record_objects(self):
        msg = BarterCastMessage("s", 0.0, records=("garbage", 42))
        assert msg.sane_records() == []


class TestSelection:
    @pytest.fixture
    def history(self):
        h = PrivateHistory("me")
        h.record_download("top1", 100.0, now=1.0)
        h.record_download("top2", 90.0, now=2.0)
        h.record_download("top3", 80.0, now=3.0)
        h.record_upload("recent1", 5.0, now=50.0)
        h.touch("recent2", 60.0)
        return h

    def test_union_of_top_and_recent(self, history):
        records = select_records(history, n_highest=2, n_recent=2)
        names = [r.counterparty for r in records]
        assert names[:2] == ["top1", "top2"]  # top-uploaders first
        assert "recent2" in names and "recent1" in names

    def test_deduplication(self, history):
        # top3 is also among the most recent transfer partners; with large
        # windows every peer appears exactly once.
        records = select_records(history, n_highest=10, n_recent=10)
        names = [r.counterparty for r in records]
        assert len(names) == len(set(names))
        assert set(names) == {"top1", "top2", "top3", "recent1", "recent2"}

    def test_record_totals_match_history(self, history):
        records = {r.counterparty: r for r in select_records(history, 10, 10)}
        assert records["top1"].downloaded == 100.0
        assert records["top1"].uploaded == 0.0
        assert records["recent1"].uploaded == 5.0

    def test_zero_windows_empty(self, history):
        assert select_records(history, 0, 0) == []

    def test_empty_history_empty(self):
        assert select_records(PrivateHistory("me"), 10, 10) == []

    def test_make_message(self, history):
        msg = make_message(history, now=123.0, n_highest=2, n_recent=1)
        assert msg.sender == "me"
        assert msg.created_at == 123.0
        assert msg.num_records >= 2
