"""Unit tests for role assignment."""

import pytest

from repro.bittorrent.roles import Role, RoleAssignment
from repro.core.adversary import HonestBehavior, Ignorer, SelfishLiar


class TestSplit:
    def test_fractions_respected(self, tiny_trace):
        roles = RoleAssignment.split(tiny_trace, freerider_fraction=0.5, seed=1)
        subjects = roles.subjects
        assert len(roles.freeriders) == round(0.5 * len(subjects))
        assert len(roles.sharers) + len(roles.freeriders) == len(subjects)

    def test_origin_seeders_get_origin_role(self, tiny_trace):
        roles = RoleAssignment.split(tiny_trace, seed=1)
        origin_ids = {s.origin_seeder for s in tiny_trace.swarms.values()}
        for pid in origin_ids:
            assert roles.role_of(pid) == Role.ORIGIN
        assert not set(roles.subjects) & origin_ids

    def test_deterministic(self, tiny_trace):
        r1 = RoleAssignment.split(tiny_trace, seed=7)
        r2 = RoleAssignment.split(tiny_trace, seed=7)
        assert r1.roles == r2.roles

    def test_seed_changes_split(self, tiny_trace):
        r1 = RoleAssignment.split(tiny_trace, seed=7)
        r2 = RoleAssignment.split(tiny_trace, seed=8)
        assert r1.freeriders != r2.freeriders

    def test_all_freeriders(self, tiny_trace):
        roles = RoleAssignment.split(tiny_trace, freerider_fraction=1.0, seed=1)
        assert roles.sharers == []

    def test_no_freeriders(self, tiny_trace):
        roles = RoleAssignment.split(tiny_trace, freerider_fraction=0.0, seed=1)
        assert roles.freeriders == []

    def test_invalid_fraction(self, tiny_trace):
        with pytest.raises(ValueError):
            RoleAssignment.split(tiny_trace, freerider_fraction=1.5)


class TestDisobedience:
    def test_disobeying_drawn_from_freeriders(self, tiny_trace):
        roles = RoleAssignment.split(
            tiny_trace, freerider_fraction=0.5, seed=1,
            disobey_fraction=0.25, disobey_kind="lie",
        )
        freeriders = set(roles.freeriders)
        for pid in roles.behaviors:
            assert pid in freeriders
            assert isinstance(roles.behaviors[pid], SelfishLiar)

    def test_ignore_kind(self, tiny_trace):
        roles = RoleAssignment.split(
            tiny_trace, freerider_fraction=0.5, seed=1,
            disobey_fraction=0.25, disobey_kind="ignore",
        )
        assert all(isinstance(b, Ignorer) for b in roles.behaviors.values())

    def test_default_behavior_honest(self, tiny_trace):
        roles = RoleAssignment.split(tiny_trace, seed=1)
        pid = roles.subjects[0]
        assert isinstance(roles.behavior_of(pid), HonestBehavior)

    def test_disobey_exceeding_freeriders_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            RoleAssignment.split(
                tiny_trace, freerider_fraction=0.3, seed=1,
                disobey_fraction=0.5, disobey_kind="lie",
            )

    def test_unknown_kind_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            RoleAssignment.split(
                tiny_trace, seed=1, disobey_fraction=0.2, disobey_kind="sabotage"
            )

    def test_zero_disobey_no_behaviors(self, tiny_trace):
        roles = RoleAssignment.split(tiny_trace, seed=1, disobey_fraction=0.0)
        assert roles.behaviors == {}

    def test_count_matches_fraction_of_subjects(self, tiny_trace):
        roles = RoleAssignment.split(
            tiny_trace, freerider_fraction=0.5, seed=1,
            disobey_fraction=0.5, disobey_kind="lie",
        )
        subjects = len(roles.subjects)
        assert len(roles.behaviors) == min(round(0.5 * subjects), len(roles.freeriders))
