"""Unit tests for the transfer graph."""

import pytest

from repro.graph.transfer_graph import TransferGraph


class TestMutation:
    def test_empty_graph(self):
        g = TransferGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.total_bytes == 0.0

    def test_add_transfer_creates_nodes_and_edge(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 100.0)
        assert g.has_node("a") and g.has_node("b")
        assert g.capacity("a", "b") == 100.0
        assert g.num_edges == 1

    def test_add_transfer_accumulates(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 100.0)
        g.add_transfer("a", "b", 50.0)
        assert g.capacity("a", "b") == 150.0
        assert g.num_edges == 1

    def test_directionality(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 100.0)
        assert g.capacity("b", "a") == 0.0

    def test_zero_transfer_creates_nodes_only(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 0.0)
        assert g.has_node("a") and g.has_node("b")
        assert g.num_edges == 0

    def test_negative_transfer_rejected(self):
        g = TransferGraph()
        with pytest.raises(ValueError):
            g.add_transfer("a", "b", -1.0)

    def test_self_transfer_rejected(self):
        g = TransferGraph()
        with pytest.raises(ValueError):
            g.add_transfer("a", "a", 5.0)

    def test_set_transfer_overwrites(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 100.0)
        g.set_transfer("a", "b", 30.0)
        assert g.capacity("a", "b") == 30.0

    def test_set_transfer_to_zero_removes_edge(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 100.0)
        g.set_transfer("a", "b", 0.0)
        assert g.num_edges == 0
        assert g.capacity("a", "b") == 0.0

    def test_set_transfer_negative_rejected(self):
        g = TransferGraph()
        with pytest.raises(ValueError):
            g.set_transfer("a", "b", -5.0)

    def test_total_bytes_tracks_set_and_add(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 100.0)
        g.add_transfer("b", "c", 50.0)
        g.set_transfer("a", "b", 10.0)
        assert g.total_bytes == 60.0

    def test_add_node_idempotent(self):
        g = TransferGraph()
        g.add_node("x")
        g.add_node("x")
        assert g.num_nodes == 1

    def test_remove_node_drops_incident_edges(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 10.0)
        g.add_transfer("b", "c", 20.0)
        g.add_transfer("c", "a", 5.0)
        g.remove_node("b")
        assert not g.has_node("b")
        assert g.num_edges == 1
        assert g.capacity("c", "a") == 5.0
        assert g.total_bytes == 5.0

    def test_remove_absent_node_noop(self):
        g = TransferGraph()
        g.remove_node("ghost")
        assert g.num_nodes == 0

    def test_version_bumps_on_mutation(self):
        g = TransferGraph()
        v0 = g.version
        g.add_transfer("a", "b", 1.0)
        v1 = g.version
        assert v1 > v0
        g.set_transfer("a", "b", 2.0)
        assert g.version > v1

    def test_noop_set_transfer_is_version_neutral(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 5.0)
        v = g.version
        g.set_transfer("a", "b", 5.0)
        assert g.version == v
        g.set_transfer("a", "c", 0.0)  # absent edge set to zero: no-op too
        v2 = g.version
        g.set_transfer("a", "c", 0.0)
        assert g.version == v2


class TestChangeEvents:
    def setup_method(self):
        self.events = []

    def listener(self, src, dst):
        self.events.append((src, dst))

    def test_add_transfer_notifies_endpoints(self):
        g = TransferGraph()
        g.subscribe(self.listener)
        g.add_transfer("a", "b", 1.0)
        assert self.events == [("a", "b")]

    def test_set_transfer_notifies_only_on_change(self):
        g = TransferGraph()
        g.subscribe(self.listener)
        g.set_transfer("a", "b", 3.0)
        g.set_transfer("a", "b", 3.0)  # no-op: silent
        g.set_transfer("a", "b", 4.0)
        g.set_transfer("a", "b", 0.0)  # removal: fires
        assert self.events == [("a", "b")] * 3

    def test_zero_byte_add_transfer_is_silent(self):
        g = TransferGraph()
        g.subscribe(self.listener)
        g.add_transfer("a", "b", 0.0)
        assert self.events == []

    def test_remove_node_notifies_every_incident_edge(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 1.0)
        g.add_transfer("c", "a", 2.0)
        g.add_transfer("b", "c", 3.0)
        g.subscribe(self.listener)
        g.remove_node("a")
        assert sorted(self.events) == [("a", "b"), ("c", "a")]

    def test_unsubscribe_stops_events(self):
        g = TransferGraph()
        g.subscribe(self.listener)
        g.add_transfer("a", "b", 1.0)
        g.unsubscribe(self.listener)
        g.add_transfer("a", "b", 1.0)
        assert self.events == [("a", "b")]
        g.unsubscribe(self.listener)  # absent: no-op

    def test_copy_does_not_inherit_listeners(self):
        g = TransferGraph()
        g.subscribe(self.listener)
        h = g.copy()
        h.add_transfer("a", "b", 1.0)
        assert self.events == []


class TestQueries:
    @pytest.fixture
    def g(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 10.0)
        g.add_transfer("a", "c", 20.0)
        g.add_transfer("b", "c", 5.0)
        return g

    def test_successors(self, g):
        assert dict(g.successors("a")) == {"b": 10.0, "c": 20.0}

    def test_predecessors(self, g):
        assert dict(g.predecessors("c")) == {"a": 20.0, "b": 5.0}

    def test_unknown_node_neighbourhoods_empty(self, g):
        assert dict(g.successors("zzz")) == {}
        assert dict(g.predecessors("zzz")) == {}

    def test_degrees(self, g):
        assert g.out_degree("a") == 2
        assert g.in_degree("c") == 2
        assert g.in_degree("a") == 0

    def test_net_flow(self, g):
        assert g.net_flow("a") == 30.0
        assert g.net_flow("c") == -25.0
        assert g.net_flow("b") == -5.0

    def test_edges_iteration(self, g):
        edges = set(g.edges())
        assert edges == {("a", "b", 10.0), ("a", "c", 20.0), ("b", "c", 5.0)}

    def test_contains(self, g):
        assert "a" in g
        assert "zzz" not in g

    def test_nodes_iteration(self, g):
        assert set(g.nodes()) == {"a", "b", "c"}


class TestInterop:
    def test_copy_is_deep(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 10.0)
        h = g.copy()
        h.add_transfer("a", "b", 5.0)
        assert g.capacity("a", "b") == 10.0
        assert h.capacity("a", "b") == 15.0

    def test_dict_round_trip(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 10.0)
        g.add_node("lonely")
        h = TransferGraph.from_dict(g.to_dict())
        assert set(h.nodes()) == set(g.nodes())
        assert set(h.edges()) == set(g.edges())

    def test_from_edges(self):
        g = TransferGraph.from_edges([("a", "b", 1.0), ("b", "c", 2.0)])
        assert g.num_edges == 2

    def test_to_networkx(self):
        g = TransferGraph()
        g.add_transfer("a", "b", 10.0)
        nxg = g.to_networkx()
        assert nxg.edges["a", "b"]["capacity"] == 10.0
