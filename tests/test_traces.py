"""Unit and property tests for trace models, generation, and I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.io import load_trace, save_trace, trace_from_dict, trace_to_dict
from repro.traces.models import (
    DAY,
    CommunityTrace,
    FileRequest,
    PeerProfile,
    PeerSession,
    SwarmSpec,
)
from repro.traces.synthetic import SyntheticTraceGenerator, TraceParams

MB = 1024.0**2


class TestPeerSession:
    def test_duration(self):
        assert PeerSession(10.0, 25.0).duration == 15.0

    def test_contains(self):
        s = PeerSession(10.0, 20.0)
        assert s.contains(10.0)
        assert s.contains(19.99)
        assert not s.contains(20.0)
        assert not s.contains(5.0)

    def test_empty_session_rejected(self):
        with pytest.raises(ValueError):
            PeerSession(10.0, 10.0)
        with pytest.raises(ValueError):
            PeerSession(10.0, 5.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            PeerSession(-1.0, 5.0)


class TestPeerProfile:
    def make(self, sessions):
        return PeerProfile(peer_id=0, uplink_bps=1.0, downlink_bps=1.0, sessions=sessions)

    def test_online_at(self):
        p = self.make([PeerSession(0.0, 10.0), PeerSession(20.0, 30.0)])
        assert p.online_at(5.0)
        assert not p.online_at(15.0)
        assert p.online_at(25.0)
        assert not p.online_at(35.0)

    def test_online_seconds(self):
        p = self.make([PeerSession(0.0, 10.0), PeerSession(20.0, 30.0)])
        assert p.online_seconds(5.0, 25.0) == 10.0
        assert p.online_seconds(0.0, 40.0) == 20.0
        assert p.online_seconds(11.0, 19.0) == 0.0

    def test_total_uptime(self):
        p = self.make([PeerSession(0.0, 10.0), PeerSession(20.0, 25.0)])
        assert p.total_uptime == 15.0

    def test_overlapping_sessions_rejected(self):
        with pytest.raises(ValueError):
            self.make([PeerSession(0.0, 10.0), PeerSession(5.0, 15.0)])

    def test_unsorted_sessions_rejected(self):
        with pytest.raises(ValueError):
            self.make([PeerSession(20.0, 30.0), PeerSession(0.0, 10.0)])

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PeerProfile(peer_id=0, uplink_bps=0.0, downlink_bps=1.0)


class TestSwarmSpec:
    def test_num_pieces_rounds_up(self):
        assert SwarmSpec(0, file_size=100.0, piece_size=30.0, origin_seeder=0).num_pieces == 4

    def test_exact_division(self):
        assert SwarmSpec(0, file_size=90.0, piece_size=30.0, origin_seeder=0).num_pieces == 3

    def test_piece_larger_than_file_rejected(self):
        with pytest.raises(ValueError):
            SwarmSpec(0, file_size=10.0, piece_size=30.0, origin_seeder=0)

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(ValueError):
            SwarmSpec(0, file_size=0.0, piece_size=1.0, origin_seeder=0)


class TestValidation:
    def make_trace(self, **overrides):
        peers = {
            0: PeerProfile(0, 1.0, 1.0, sessions=[PeerSession(0.0, 100.0)]),
            1: PeerProfile(1, 1.0, 1.0, sessions=[PeerSession(0.0, 100.0)]),
        }
        swarms = {0: SwarmSpec(0, 100.0, 10.0, origin_seeder=1)}
        requests = [FileRequest(0, 0, 10.0)]
        data = dict(duration=100.0, peers=peers, swarms=swarms, requests=requests)
        data.update(overrides)
        return CommunityTrace(**data)

    def test_valid_trace_passes(self):
        self.make_trace().validate()

    def test_unknown_request_peer(self):
        trace = self.make_trace(requests=[FileRequest(99, 0, 10.0)])
        with pytest.raises(ValueError):
            trace.validate()

    def test_unknown_request_swarm(self):
        trace = self.make_trace(requests=[FileRequest(0, 99, 10.0)])
        with pytest.raises(ValueError):
            trace.validate()

    def test_unsorted_requests(self):
        trace = self.make_trace(requests=[FileRequest(0, 0, 50.0), FileRequest(1, 0, 10.0)])
        with pytest.raises(ValueError):
            trace.validate()

    def test_request_while_offline(self):
        peers = {
            0: PeerProfile(0, 1.0, 1.0, sessions=[PeerSession(50.0, 100.0)]),
            1: PeerProfile(1, 1.0, 1.0, sessions=[PeerSession(0.0, 100.0)]),
        }
        trace = self.make_trace(peers=peers, requests=[FileRequest(0, 0, 10.0)])
        with pytest.raises(ValueError):
            trace.validate()

    def test_unknown_origin_seeder(self):
        trace = self.make_trace(swarms={0: SwarmSpec(0, 100.0, 10.0, origin_seeder=77)})
        with pytest.raises(ValueError):
            trace.validate()

    def test_requests_of(self):
        trace = self.make_trace()
        assert len(trace.requests_of(0)) == 1
        assert trace.requests_of(1) == []


class TestSyntheticGenerator:
    @pytest.fixture(scope="class")
    def trace(self):
        params = TraceParams(
            num_peers=25, num_swarms=3, duration=2 * DAY,
            min_file_size=20 * MB, max_file_size=100 * MB, target_pieces=64,
        )
        return SyntheticTraceGenerator(params, seed=11).generate()

    def test_validates(self, trace):
        trace.validate()  # does not raise

    def test_peer_count_includes_origin_seeders(self, trace):
        assert trace.num_peers == 25 + 3

    def test_origin_seeders_always_online(self, trace):
        for spec in trace.swarms.values():
            seeder = trace.peers[spec.origin_seeder]
            assert seeder.online_at(0.0)
            assert seeder.online_at(trace.duration - 1.0)

    def test_file_sizes_in_range(self, trace):
        for spec in trace.swarms.values():
            assert 20 * MB <= spec.file_size <= 100 * MB

    def test_requests_unique_per_peer_swarm(self, trace):
        seen = set()
        for req in trace.requests:
            key = (req.peer_id, req.swarm_id)
            assert key not in seen
            seen.add(key)

    def test_deterministic(self):
        params = TraceParams(num_peers=10, num_swarms=2, duration=DAY)
        t1 = SyntheticTraceGenerator(params, seed=5).generate()
        t2 = SyntheticTraceGenerator(params, seed=5).generate()
        assert trace_to_dict(t1) == trace_to_dict(t2)

    def test_seed_changes_output(self):
        params = TraceParams(num_peers=10, num_swarms=2, duration=DAY)
        t1 = SyntheticTraceGenerator(params, seed=5).generate()
        t2 = SyntheticTraceGenerator(params, seed=6).generate()
        assert trace_to_dict(t1) != trace_to_dict(t2)

    def test_no_origin_seeder_mode(self):
        params = TraceParams(
            num_peers=10, num_swarms=2, duration=DAY, include_origin_seeders=False
        )
        trace = SyntheticTraceGenerator(params, seed=5).generate()
        assert trace.num_peers == 10
        for spec in trace.swarms.values():
            assert spec.origin_seeder in trace.peers

    def test_param_validation(self):
        with pytest.raises(ValueError):
            TraceParams(num_peers=1).validate()
        with pytest.raises(ValueError):
            TraceParams(num_swarms=0).validate()
        with pytest.raises(ValueError):
            TraceParams(min_file_size=100.0, max_file_size=10.0).validate()
        with pytest.raises(ValueError):
            TraceParams(day_active_prob=1.5).validate()


class TestTraceIO:
    def test_round_trip_file(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(tiny_trace, path)
        loaded = load_trace(path)
        assert trace_to_dict(loaded) == trace_to_dict(tiny_trace)

    def test_round_trip_dict(self, tiny_trace):
        assert trace_to_dict(trace_from_dict(trace_to_dict(tiny_trace))) == trace_to_dict(tiny_trace)

    def test_unknown_schema_rejected(self, tiny_trace):
        data = trace_to_dict(tiny_trace)
        data["schema_version"] = 999
        with pytest.raises(ValueError):
            trace_from_dict(data)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generated_traces_always_valid(seed):
    params = TraceParams(
        num_peers=6, num_swarms=2, duration=DAY, min_file_size=10 * MB,
        max_file_size=40 * MB, target_pieces=16,
    )
    trace = SyntheticTraceGenerator(params, seed=seed).generate()
    trace.validate()
    # Every request is within a session of its peer.
    for req in trace.requests:
        assert trace.peers[req.peer_id].online_at(req.time)
