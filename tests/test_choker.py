"""Unit tests for the choker."""

import pytest

from repro.bittorrent.choker import interested_candidates, select_unchokes
from repro.bittorrent.config import BitTorrentConfig
from repro.bittorrent.swarm import SwarmState
from repro.core.node import BarterCastNode
from repro.core.policies import BanPolicy, NoPolicy, RankPolicy
from repro.core.reputation import MB
from repro.sim.rng import RngRegistry
from repro.traces.models import SwarmSpec


@pytest.fixture
def rng():
    return RngRegistry(3).stream("choke")


@pytest.fixture
def config():
    return BitTorrentConfig(round_interval=10.0, regular_slots=2, optimistic_interval=30.0)


def make_swarm(num_leechers=4, seeder_id=100):
    swarm = SwarmState(SwarmSpec(0, file_size=100.0, piece_size=10.0, origin_seeder=seeder_id))
    swarm.join(seeder_id, now=0.0, complete=True)
    for pid in range(num_leechers):
        swarm.join(pid, now=0.0)
    return swarm


ALWAYS_ONLINE = lambda pid: True
ALWAYS_CONNECT = lambda a, b: True


class TestInterestedCandidates:
    def test_seeder_sees_all_leechers(self):
        swarm = make_swarm(3)
        seeder = swarm.members[100]
        cands = interested_candidates(swarm, seeder, ALWAYS_ONLINE, ALWAYS_CONNECT)
        assert set(cands) == {0, 1, 2}

    def test_empty_leecher_attracts_no_interest(self):
        swarm = make_swarm(3)
        leecher = swarm.members[0]  # has no pieces
        assert interested_candidates(swarm, leecher, ALWAYS_ONLINE, ALWAYS_CONNECT) == []

    def test_offline_peers_excluded(self):
        swarm = make_swarm(3)
        seeder = swarm.members[100]
        cands = interested_candidates(swarm, seeder, lambda p: p != 1, ALWAYS_CONNECT)
        assert set(cands) == {0, 2}

    def test_unconnectable_pairs_excluded(self):
        swarm = make_swarm(3)
        seeder = swarm.members[100]
        cands = interested_candidates(
            swarm, seeder, ALWAYS_ONLINE, lambda a, b: b != 2
        )
        assert set(cands) == {0, 1}

    def test_other_seeders_not_interested(self):
        swarm = make_swarm(2)
        swarm.join(200, now=0.0, complete=True)
        seeder = swarm.members[100]
        cands = interested_candidates(swarm, seeder, ALWAYS_ONLINE, ALWAYS_CONNECT)
        assert 200 not in cands


class TestSelectUnchokes:
    def test_seeder_unchokes_up_to_slots_plus_optimistic(self, rng, config):
        swarm = make_swarm(6)
        seeder = swarm.members[100]
        unchoked = select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=1,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        assert len(unchoked) == config.regular_slots + 1

    def test_no_candidates_no_unchokes(self, rng, config):
        swarm = make_swarm(0)
        seeder = swarm.members[100]
        unchoked = select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=1,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        assert unchoked == set()

    def test_tit_for_tat_prefers_reciprocators(self, rng, config):
        swarm = make_swarm(5)
        leecher = swarm.members[0]
        leecher.bitfield.add(0)  # has something to offer
        leecher.received_last_round = {1: 1000.0, 2: 500.0, 3: 50.0}
        unchoked = select_unchokes(
            swarm, leecher, policy=NoPolicy(), node=None, rng=rng, round_idx=1,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        assert {1, 2} <= unchoked  # the top-2 reciprocators hold regular slots

    def test_seeder_prefers_fastest_downloaders(self, rng, config):
        swarm = make_swarm(5)
        seeder = swarm.members[100]
        seeder.sent_last_round = {4: 9000.0, 3: 8000.0}
        unchoked = select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=1,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        assert {3, 4} <= unchoked

    def test_optimistic_persists_between_rotations(self, rng, config):
        swarm = make_swarm(8)
        seeder = swarm.members[100]
        # Pin the regular slots so the optimistic target cannot be absorbed
        # into them by a tie-break shuffle between rounds.
        seeder.sent_last_round = {6: 9000.0, 7: 8000.0}
        select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=1,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        first = seeder.optimistic_peer
        select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=2,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        # Rotation period is 3 rounds (30s / 10s): unchanged at round 2.
        assert seeder.optimistic_peer == first

    def test_optimistic_rotates_after_interval(self, rng, config):
        swarm = make_swarm(8)
        seeder = swarm.members[100]
        choices = set()
        for round_idx in range(1, 40):
            select_unchokes(
                swarm, seeder, policy=NoPolicy(), node=None, rng=rng,
                round_idx=round_idx, config=config,
                is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
            )
            choices.add(seeder.optimistic_peer)
        assert len(choices) >= 3  # rotates over the population

    def test_promotion_keeps_rotation_cadence(self, rng, config):
        # When tit-for-tat promotes the current optimistic peer into a
        # regular slot, the forced re-pick must NOT restart the rotation
        # clock: only genuine rotations (or a vanished target) do.
        # Resetting on promotion silently moved every later rotation off
        # the configured 30 s period.
        swarm = make_swarm(8)
        seeder = swarm.members[100]
        seeder.sent_last_round = {6: 9000.0, 7: 8000.0}
        select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=1,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        assert seeder.optimistic_chosen_round == 1
        promoted = seeder.optimistic_peer
        # Round 2: the optimistic target now tops the tit-for-tat ranking.
        seeder.sent_last_round = {promoted: 9000.0, 7: 8000.0}
        unchoked = select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=2,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        assert promoted in unchoked  # holds a regular slot now
        assert seeder.optimistic_peer != promoted  # re-picked
        assert seeder.optimistic_chosen_round == 1  # clock NOT reset
        # Round 3: period is 3 rounds, so still no rotation.
        select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=3,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        assert seeder.optimistic_chosen_round == 1
        # Round 4: rotation lands on schedule, 3 rounds after round 1.
        select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=4,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        assert seeder.optimistic_chosen_round == 4

    def test_ban_policy_excludes_banned(self, rng, config):
        swarm = make_swarm(4)
        seeder = swarm.members[100]
        node = BarterCastNode(100)
        node.record_upload(0, 900 * MB, now=1.0)  # peer 0 deep in debt
        unchoked = select_unchokes(
            swarm, seeder, policy=BanPolicy(-0.5), node=node, rng=rng, round_idx=1,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        assert 0 not in unchoked

    def test_rank_policy_optimistic_prefers_reputation(self, rng, config):
        swarm = make_swarm(4)
        seeder = swarm.members[100]
        node = BarterCastNode(100)
        node.record_download(2, 900 * MB, now=1.0)  # peer 2 served us a lot
        # No tit-for-tat signal: all ranks equal, optimistic slot decides.
        cfg = BitTorrentConfig(round_interval=10.0, regular_slots=0, optimistic_interval=30.0)
        unchoked = select_unchokes(
            swarm, seeder, policy=RankPolicy(), node=node, rng=rng, round_idx=1,
            config=cfg, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        assert unchoked == {2}

    def test_offline_optimistic_target_replaced(self, rng, config):
        swarm = make_swarm(4)
        seeder = swarm.members[100]
        select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=1,
            config=config, is_online=ALWAYS_ONLINE, can_connect=ALWAYS_CONNECT,
        )
        target = seeder.optimistic_peer
        unchoked = select_unchokes(
            swarm, seeder, policy=NoPolicy(), node=None, rng=rng, round_idx=2,
            config=config, is_online=lambda p: p != target, can_connect=ALWAYS_CONNECT,
        )
        assert target not in unchoked
