"""Unit tests for swarm state."""

import numpy as np
import pytest

from repro.bittorrent.swarm import SwarmState
from repro.traces.models import SwarmSpec


@pytest.fixture
def swarm():
    return SwarmState(SwarmSpec(swarm_id=0, file_size=100.0, piece_size=10.0, origin_seeder=99))


class TestMembership:
    def test_join_leecher(self, swarm):
        m = swarm.join(1, now=5.0)
        assert m.is_leecher
        assert m.joined_at == 5.0
        assert m.completed_at is None
        assert swarm.is_member(1)

    def test_join_seeder_counts_availability(self, swarm):
        swarm.join(99, now=0.0, complete=True)
        assert (swarm.availability == 1).all()
        assert swarm.members[99].is_seeder
        assert swarm.members[99].completed_at == 0.0

    def test_join_idempotent(self, swarm):
        m1 = swarm.join(1, now=5.0)
        m2 = swarm.join(1, now=9.0)
        assert m1 is m2
        assert m1.joined_at == 5.0

    def test_leave_removes_availability(self, swarm):
        swarm.join(99, now=0.0, complete=True)
        swarm.leave(99)
        assert (swarm.availability == 0).all()
        assert not swarm.is_member(99)

    def test_leave_absent_noop(self, swarm):
        swarm.leave(42)

    def test_leave_partial_member(self, swarm):
        m = swarm.join(1, now=0.0)
        swarm.grant_pieces(m, np.array([0, 3]), now=1.0)
        swarm.leave(1)
        assert swarm.availability[0] == 0
        assert swarm.availability[3] == 0


class TestPieces:
    def test_grant_updates_availability(self, swarm):
        m = swarm.join(1, now=0.0)
        finished = swarm.grant_pieces(m, np.array([0, 1]), now=1.0)
        assert not finished
        assert swarm.availability[0] == 1
        assert m.bitfield.num_have == 2

    def test_grant_completion(self, swarm):
        m = swarm.join(1, now=0.0)
        finished = swarm.grant_pieces(m, np.arange(10), now=7.0)
        assert finished
        assert m.completed_at == 7.0
        assert swarm.completions == 1

    def test_completion_fires_once(self, swarm):
        m = swarm.join(1, now=0.0)
        swarm.grant_pieces(m, np.arange(10), now=7.0)
        again = swarm.grant_pieces(m, np.arange(10), now=8.0)
        assert not again
        assert swarm.completions == 1
        assert m.completed_at == 7.0

    def test_leechers_and_seeders_views(self, swarm):
        swarm.join(99, now=0.0, complete=True)
        swarm.join(1, now=0.0)
        assert [m.peer_id for m in swarm.seeders()] == [99]
        assert [m.peer_id for m in swarm.leechers()] == [1]

    def test_clear_in_flight(self, swarm):
        m = swarm.join(1, now=0.0)
        m.in_flight[2] = True
        swarm.clear_in_flight()
        assert not m.in_flight.any()

    def test_num_pieces_matches_spec(self, swarm):
        assert swarm.num_pieces == 10
