"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import Event, SimulationError, Simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_schedule_relative(self):
        sim = Simulator()
        ev = sim.schedule(3.0, lambda: None)
        assert ev.time == 3.0

    def test_schedule_absolute(self):
        sim = Simulator(start_time=10.0)
        ev = sim.schedule_at(12.0, lambda: None)
        assert ev.time == 12.0

    def test_schedule_in_past_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(9.0, lambda: None)

    def test_schedule_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_nonfinite_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda: None)

    def test_schedule_at_current_time_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(0.0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]


class TestExecution:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_equal_times_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run_until(5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_advances_clock_even_with_empty_queue(self):
        sim = Simulator()
        sim.run_until(100.0)
        assert sim.now == 100.0

    def test_run_until_backwards_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_until_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run_until(5.0)
        assert fired == [True]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]

    def test_max_events_limit(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_fires_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_step_on_empty_queue_returns_false(self):
        assert Simulator().step() is False

    def test_events_fired_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_fired == 4

    def test_run_returns_count(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run() == 3

    def test_reentrant_run_raises(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(True))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancelled_flag(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        assert not ev.cancelled
        ev.cancel()
        assert ev.cancelled

    def test_len_excludes_cancelled(self):
        sim = Simulator()
        ev1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert len(sim) == 2
        ev1.cancel()
        assert len(sim) == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        ev1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev1.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None

    def test_cancel_during_run(self):
        sim = Simulator()
        fired = []
        ev2 = sim.schedule(2.0, lambda: fired.append(2))
        sim.schedule(1.0, lambda: ev2.cancel())
        sim.run()
        assert fired == []

    def test_pending_iterates_live_events(self):
        sim = Simulator()
        ev1 = sim.schedule(1.0, lambda: None, label="a")
        sim.schedule(2.0, lambda: None, label="b")
        ev1.cancel()
        labels = [ev.label for ev in sim.pending()]
        assert labels == ["b"]


class TestHeapCompaction:
    def make_churny_sim(self, n=400):
        """Schedule ``n`` far-future events, then cancel most of them from
        an early event — the cancel-heavy pattern (timeout timers, choke
        rotations) that used to leave the heap full of tombstones."""
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(10.0 + i, (lambda i=i: fired.append(i)), label=f"e{i}")
            for i in range(n)
        ]
        return sim, events, fired

    def test_compaction_triggers_and_shrinks_heap(self):
        sim, events, _ = self.make_churny_sim()
        for ev in events[: len(events) - 10]:
            ev.cancel()
        assert sim.compactions >= 1
        # physical heap is bounded by O(live) + the compaction threshold,
        # not by the number of cancels (390 here)
        assert len(sim) == 10
        assert len(sim._queue) < Simulator.COMPACT_MIN_QUEUE

    def test_firing_order_identical_with_compaction(self):
        sim, events, fired = self.make_churny_sim()
        for i, ev in enumerate(events):
            if i % 4 != 3:  # cancel three of every four events
                ev.cancel()
        assert sim.compactions >= 1
        sim.run()
        assert fired == [i for i in range(len(events)) if i % 4 == 3]

    def test_small_queues_never_compact(self):
        sim = Simulator()
        events = [sim.schedule(1.0 + i, lambda: None) for i in range(32)]
        for ev in events:
            ev.cancel()
        assert sim.compactions == 0

    def test_dead_head_pops_do_not_double_count(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(1.0, lambda: fired.append("dead"))
        sim.schedule(2.0, lambda: fired.append("live"))
        first.cancel()
        sim.run()
        assert fired == ["live"]
        assert sim.compactions == 0

    def test_cancel_is_idempotent_for_tombstone_count(self):
        sim, events, _ = self.make_churny_sim(100)
        for _ in range(3):  # repeated cancels must count once
            events[0].cancel()
        assert sim._tombstones == 1
