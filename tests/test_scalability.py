"""Tests for the scalability experiment (small sizes for speed)."""

import pytest

from repro.experiments.scalability import run_scalability


class TestScalability:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scalability(sizes=(500, 2000), degree=8, queries=50, seed=3)

    def test_points_match_sizes(self, result):
        assert [p.num_peers for p in result.points] == [500, 2000]

    def test_edges_grow_with_size(self, result):
        assert result.points[1].num_edges > result.points[0].num_edges

    def test_latencies_positive(self, result):
        for p in result.points:
            assert p.query_us > 0
            assert p.ingest_us > 0

    def test_growth_factor_defined(self, result):
        assert result.query_growth_factor() > 0

    def test_sizes_must_increase(self):
        with pytest.raises(ValueError):
            run_scalability(sizes=(2000, 500))
        with pytest.raises(ValueError):
            run_scalability(sizes=())

    def test_single_size_growth_factor_one(self):
        result = run_scalability(sizes=(300,), degree=5, queries=20, seed=1)
        assert result.query_growth_factor() == 1.0

    def test_columnar_backend_smoke(self):
        """The columnar backend runs the same experiment and lands on the
        same subjective view; the CSR build cost is reported on it only."""
        dict_r = run_scalability(sizes=(400,), degree=6, queries=25, seed=5)
        col_r = run_scalability(
            sizes=(400,), degree=6, queries=25, seed=5, backend="columnar"
        )
        assert col_r.points[-1].num_edges == dict_r.points[-1].num_edges
        assert col_r.points[-1].csr_build_ms > 0.0
        assert dict_r.points[-1].csr_build_ms == 0.0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_scalability(sizes=(300,), backend="sqlite")
