"""Columnar backend: interner stability, dict-oracle equivalence, kernels.

The dict-backed :class:`~repro.graph.transfer_graph.TransferGraph` is the
semantic oracle; every test here pins the columnar backend — storage,
events, both batch-kernel twins, and node-level behaviour — to it
bit-for-bit.  The interner contract (indices never reused, never remapped,
surviving churn wipes and log compaction) is what the stamp cache and the
memoised index gathers in :mod:`repro.core.node` rely on, so it gets its
own section.
"""

import random

import numpy as np
import pytest

from repro.core.messages import BarterCastMessage, HistoryRecord
from repro.core.node import BarterCastNode
from repro.core.reputation import MB
from repro.graph.batch import maxflow_two_hop_batch
from repro.graph.columnar import (
    ColumnarTransferGraph,
    two_hop_batch_arrays,
    two_hop_batch_rows,
)
from repro.graph.interner import PeerInterner
from repro.graph.maxflow import KERNEL_INVOCATIONS
from repro.graph.transfer_graph import TransferGraph


# ---------------------------------------------------------------------------
# Interner contract
# ---------------------------------------------------------------------------


class TestPeerInterner:
    def test_round_trip_and_stability(self):
        interner = PeerInterner()
        ids = ["alice", 42, ("swarm", 7), "bob"]
        indices = [interner.intern(p) for p in ids]
        assert indices == [0, 1, 2, 3]
        # Re-interning returns the same index; lookup/peer round-trip.
        assert [interner.intern(p) for p in ids] == indices
        for p, i in zip(ids, indices):
            assert interner.lookup(p) == i
            assert interner.peer(i) == p
        assert interner.lookup("stranger") == -1
        assert len(interner) == 4

    def test_string_and_int_ids_do_not_collide(self):
        interner = PeerInterner()
        a = interner.intern(1)
        b = interner.intern("1")
        assert a != b
        assert interner.peer(a) == 1
        assert interner.peer(b) == "1"

    def test_indices_survive_churn_wipe(self):
        """A hard-restart wipe (forget every reporter) empties the graph's
        live state but must not move any interned index."""
        node = BarterCastNode("me", graph_backend="columnar")
        msg = BarterCastMessage(
            "r1",
            1.0,
            records=(
                HistoryRecord("a", 100 * MB, 50 * MB),
                HistoryRecord("b", 10 * MB, 0.0),
            ),
        )
        node.receive_message(msg)
        interner = node.graph.interner
        before = {p: interner.lookup(p) for p in ("r1", "a", "b")}
        assert all(i >= 0 for i in before.values())
        node.wipe_shared_history()
        after = {p: interner.lookup(p) for p in ("r1", "a", "b")}
        assert after == before
        # Re-learning the same peers reuses the same indices.
        node.receive_message(
            BarterCastMessage("r1", 2.0, records=(HistoryRecord("a", 1 * MB, 0.0),))
        )
        assert {p: interner.lookup(p) for p in ("r1", "a", "b")} == before

    def test_indices_survive_log_compaction(self):
        g = ColumnarTransferGraph()
        for i in range(20):
            g.add_transfer(f"p{i}", f"p{(i + 1) % 20}", 10.0)
        before = {f"p{i}": g.peer_index(f"p{i}") for i in range(20)}
        for i in range(0, 20, 2):
            g.set_transfer(f"p{i}", f"p{(i + 1) % 20}", 0.0)
        removed = g.compact()
        assert removed == 10
        assert {f"p{i}": g.peer_index(f"p{i}") for i in range(20)} == before


# ---------------------------------------------------------------------------
# Graph-level dict-oracle equivalence
# ---------------------------------------------------------------------------


def _random_op_stream(seed: int, n_peers: int = 8, n_ops: int = 60):
    rng = random.Random(seed)
    peers = [f"p{i}" for i in range(n_peers)]
    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        a, b = rng.sample(peers, 2)
        if roll < 0.5:
            ops.append(("add", a, b, round(rng.uniform(0.1, 9.9), 3)))
        elif roll < 0.72:
            ops.append(("set", a, b, round(rng.uniform(0.1, 9.9), 3)))
        elif roll < 0.88:
            ops.append(("set", a, b, 0.0))
        else:
            ops.append(("remove", a, None, None))
    return ops


def _apply(graph, ops, events):
    graph.subscribe(lambda s, d: events.append((s, d)))
    for op, a, b, v in ops:
        if op == "add":
            graph.add_transfer(a, b, v)
        elif op == "set":
            graph.set_transfer(a, b, v)
        else:
            graph.remove_node(a)


@pytest.mark.parametrize("seed", range(8))
def test_op_stream_equivalence_with_dict_oracle(seed):
    ops = _random_op_stream(seed)
    g1, g2 = TransferGraph(), ColumnarTransferGraph()
    ev1, ev2 = [], []
    _apply(g1, ops, ev1)
    _apply(g2, ops, ev2)
    assert ev1 == ev2  # listener event order is part of the contract
    assert g1.version == g2.version
    assert g1.total_bytes == g2.total_bytes
    assert sorted(g1.nodes(), key=repr) == sorted(g2.nodes(), key=repr)
    for p in g1.nodes():
        # Order matters: snapshot iteration order is the summation order.
        assert list(g1.successors(p).items()) == list(g2.successors(p).items())
        assert list(g1.predecessors(p).items()) == list(g2.predecessors(p).items())
        assert g1.net_flow(p) == g2.net_flow(p)


@pytest.mark.parametrize("seed", range(8))
def test_batch_kernels_bit_identical(seed):
    """Both columnar kernel twins (array and row-direct) against the
    generic dict-view loop on the dict oracle, ghost targets included."""
    ops = _random_op_stream(seed)
    g1, g2 = TransferGraph(), ColumnarTransferGraph()
    _apply(g1, ops, [])
    _apply(g2, ops, [])
    live = list(g1.nodes())
    if not live:
        pytest.skip("empty stream")
    for owner in live[:4]:
        targets = [p for p in live if p != owner] + ["ghost"]
        ref = maxflow_two_hop_batch(g1, owner, targets)
        arr = two_hop_batch_arrays(g2, owner, targets)
        rows = two_hop_batch_rows(g2, owner, targets)
        for j in targets:
            assert ref[j] == arr[j], (owner, j)
            assert ref[j] == rows[j], (owner, j)


def test_dispatch_uses_array_kernel_when_csr_fresh():
    g = ColumnarTransferGraph()
    for i in range(40):
        g.add_transfer(f"p{i}", f"p{(i + 3) % 40}", float(i + 1))
    g.build_csr()
    assert g.csr_fresh
    before = KERNEL_INVOCATIONS["maxflow_two_hop_batch_columnar"]
    maxflow_two_hop_batch(g, "p0", [f"p{i}" for i in range(1, 5)])
    assert KERNEL_INVOCATIONS["maxflow_two_hop_batch_columnar"] == before + 1


def test_dispatch_uses_row_kernel_on_stale_csr_small_batch():
    g = ColumnarTransferGraph()
    for i in range(40):
        g.add_transfer(f"p{i}", f"p{(i + 3) % 40}", float(i + 1))
    assert not g.csr_fresh
    before = KERNEL_INVOCATIONS["maxflow_two_hop_batch_rows"]
    maxflow_two_hop_batch(g, "p0", ["p1", "p2"])
    assert KERNEL_INVOCATIONS["maxflow_two_hop_batch_rows"] == before + 1


def test_record_paths_works_on_columnar():
    g1, g2 = TransferGraph(), ColumnarTransferGraph()
    for g in (g1, g2):
        g.add_transfer("a", "me", 100.0)
        g.add_transfer("a", "v", 50.0)
        g.add_transfer("v", "me", 30.0)
    ref = maxflow_two_hop_batch(g1, "me", ["a"], record_paths=True)
    got = maxflow_two_hop_batch(g2, "me", ["a"], record_paths=True)
    assert ref == got
    inflow, outflow, in_paths, out_paths = got["a"]
    assert inflow == 130.0
    assert len(in_paths) == 2


def test_bulk_load_matches_incremental_build():
    rng = np.random.default_rng(3)
    n = 300
    src = rng.integers(0, n, size=2000)
    dst = rng.integers(0, n, size=2000)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    _, first = np.unique(src * n + dst, return_index=True)
    first.sort()
    src, dst = src[first], dst[first]
    val = rng.uniform(1.0, 100.0, size=src.shape[0])

    bulk = ColumnarTransferGraph.from_edge_arrays(n, src, dst, val)
    inc = ColumnarTransferGraph()
    for s, d, v in zip(src.tolist(), dst.tolist(), val.tolist()):
        inc.set_transfer(int(s), int(d), float(v))
    assert bulk.num_edges == inc.num_edges
    # Row contents match (bulk declares all n nodes up front, so global
    # node order differs from first-appearance order; per-row order is
    # what the kernels consume).
    for p in range(n):
        assert list(bulk.successors(p).items()) == list(inc.successors(p).items())
    # Mutating a lazily-loaded graph materializes the python rows first.
    bulk.add_transfer(int(src[0]), int(dst[0]), 5.0)
    assert bulk.capacity(int(src[0]), int(dst[0])) == pytest.approx(
        float(val[0]) + 5.0
    )


# ---------------------------------------------------------------------------
# Node-level equivalence (backend selection is behaviour-invisible)
# ---------------------------------------------------------------------------


def _gossip_workload(seed: int, n_peers: int = 60, n_msgs: int = 50):
    rng = random.Random(seed)
    msgs = []
    for t in range(n_msgs):
        sender = rng.randrange(1, n_peers)  # 0 is the evaluating node
        records = tuple(
            HistoryRecord(
                counterparty=rng.randrange(n_peers),
                uploaded=rng.uniform(1, 200) * MB,
                downloaded=rng.uniform(1, 200) * MB,
            )
            for _ in range(rng.randint(1, 6))
        )
        msgs.append(BarterCastMessage(sender, float(t), records=records))
    return msgs


@pytest.mark.parametrize("seed", range(4))
def test_node_backend_equivalence_including_churn(seed):
    msgs = _gossip_workload(seed)
    nd = BarterCastNode(0, cache_mode="dirty", graph_backend="dict")
    nc = BarterCastNode(0, cache_mode="dirty", graph_backend="columnar")
    candidates = list(range(1, 40))
    rows_d, rows_c = [], []
    for k, msg in enumerate(msgs):
        for n, rows in ((nd, rows_d), (nc, rows_c)):
            n.receive_message(msg)
            reps = n.reputations_of(candidates)
            rows.append(tuple(reps[c] for c in candidates))
        if k == len(msgs) // 2:
            # Mid-run hard restart: both backends wipe identically.
            assert nd.wipe_shared_history() == nc.wipe_shared_history()
    assert rows_d == rows_c
    assert nd.rep_cache_hits == nc.rep_cache_hits
    assert nd.rep_cache_misses == nc.rep_cache_misses


def test_invalid_backend_rejected():
    with pytest.raises(ValueError):
        BarterCastNode(0, graph_backend="csr")


# ---------------------------------------------------------------------------
# Float determinism
# ---------------------------------------------------------------------------


def test_columnar_kernel_byte_identical_across_runs():
    """The columnar kernels sum 2-hop terms in canonical order — ascending
    edge-slot order, i.e. the dict oracle's insertion order (an ascending
    interned-index order would *break* oracle bit-identity, see the module
    docstring) — so two independently-built replicas produce byte-identical
    reputation vectors."""
    def build():
        g = ColumnarTransferGraph()
        rng = random.Random(11)
        for _ in range(400):
            a, b = rng.sample(range(50), 2)
            g.add_transfer(a, b, rng.uniform(0.1, 99.9))
        return g

    g1, g2 = build(), build()
    targets = list(range(1, 50))
    r1 = two_hop_batch_arrays(g1, 0, targets)
    r2 = two_hop_batch_arrays(g2, 0, targets)
    b1 = np.array([r1[t] for t in targets]).tobytes()
    b2 = np.array([r2[t] for t in targets]).tobytes()
    assert b1 == b2
    # The row-direct twin agrees byte-for-byte as well.
    r3 = two_hop_batch_rows(g2, 0, targets)
    b3 = np.array([r3[t] for t in targets]).tobytes()
    assert b1 == b3
