"""Tests for the parallel sweep runner (:mod:`repro.parallel`).

The load-bearing property is *bit-identity*: any ``--jobs`` level — and
any crash/retry schedule — must produce exactly the results of the
serial path.  Everything else (crash isolation, timeouts, merge
bookkeeping) exists in service of that guarantee.
"""

import pickle

import numpy as np
import pytest

from repro.experiments import ScenarioConfig
from repro.graph.maxflow import (
    kernel_invocations_delta,
    merge_kernel_invocations,
    snapshot_kernel_invocations,
)
from repro.obs import MetricsRegistry, Observability
from repro.parallel import (
    EXECUTORS,
    ParallelRunner,
    SweepError,
    SweepTask,
    execute_task,
    fig1_task,
    run_sweep,
    whitewash_tasks,
)


def echo_tasks(n):
    return [
        SweepTask(task_id=f"echo/{i}", experiment="_echo", params={"i": i})
        for i in range(n)
    ]


class TestSweepTask:
    def test_task_is_picklable(self):
        task = fig1_task(ScenarioConfig.tiny())
        clone = pickle.loads(pickle.dumps(task))
        assert clone.task_id == task.task_id
        assert clone.params["scenario"].seed == task.params["scenario"].seed
        assert clone.params["scenario"].name == task.params["scenario"].name

    def test_with_attempt_preserves_identity(self):
        task = echo_tasks(1)[0]
        retry = task.with_attempt(2)
        assert retry.attempt == 2
        assert (retry.task_id, retry.experiment, retry.params) == (
            task.task_id,
            task.experiment,
            task.params,
        )

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            execute_task(SweepTask(task_id="x", experiment="no-such-experiment"))

    def test_all_figure_executors_registered(self):
        for name in ("fig1", "fig2_policy", "fig3_point", "fig4",
                     "whitewash", "scalability"):
            assert name in EXECUTORS


class TestKernelCounterMerge:
    def test_snapshot_delta_merge_roundtrip(self):
        base = snapshot_kernel_invocations()
        merge_kernel_invocations({"maxflow": 3, "novel_kernel": 2})
        delta = kernel_invocations_delta(base)
        assert delta["maxflow"] == 3
        assert delta["novel_kernel"] == 2
        # merging the delta back doubles it relative to the baseline
        merge_kernel_invocations(delta)
        assert kernel_invocations_delta(base)["maxflow"] == 6

    def test_merge_rejects_negative(self):
        with pytest.raises(ValueError):
            merge_kernel_invocations({"maxflow": -1})

    def test_delta_ignores_untouched_kernels(self):
        base = snapshot_kernel_invocations()
        assert kernel_invocations_delta(base) == {}


class TestRunnerBasics:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_empty_task_list(self):
        assert ParallelRunner(jobs=2).run([]) == []

    def test_inline_matches_pool(self):
        tasks = echo_tasks(6)
        inline = run_sweep(tasks)
        pooled = run_sweep(tasks, runner=ParallelRunner(jobs=2))
        assert inline == pooled == [{"i": i} for i in range(6)]

    def test_pool_uses_multiple_workers(self):
        runner = ParallelRunner(jobs=2)
        runner.run(echo_tasks(8))
        info = runner.last_run_info
        assert info["mode"] == "pool"
        pids = {t["worker_pid"] for t in info["tasks"]}
        assert len(pids) == 2

    def test_results_keyed_by_task_order(self):
        # Tasks with wildly different durations still merge in task order.
        tasks = [
            SweepTask(
                task_id=f"sleep/{i}",
                experiment="_sleep",
                params={"seconds": 0.2 if i == 0 else 0.0, "hang_attempts": 99},
            )
            for i in range(4)
        ]
        results = ParallelRunner(jobs=2).run(tasks)
        assert [r.task_id for r in results] == [t.task_id for t in tasks]

    def test_tracer_forces_inline(self, tmp_path):
        from repro.obs import make_observability

        obs = make_observability(trace_path=tmp_path / "t.jsonl")
        try:
            runner = ParallelRunner(jobs=4, obs=obs)
            runner.run(echo_tasks(3))
        finally:
            obs.close()
        assert runner.last_run_info["mode"] == "inline"
        assert runner.last_run_info["forced_inline_tracing"] is True


class TestCrashIsolation:
    def test_crashing_worker_is_retried(self):
        tasks = echo_tasks(4)
        tasks.insert(2, SweepTask(task_id="crash", experiment="_crash", params={}))
        runner = ParallelRunner(jobs=2, retries=1)
        payloads = [r.payload for r in runner.run(tasks)]
        assert payloads[2] == {"survived": True, "attempt": 1}
        assert [p for i, p in enumerate(payloads) if i != 2] == [
            {"i": i} for i in range(4)
        ]
        assert runner.last_run_info["pool_rebuilds"] >= 1

    def test_permanent_crash_raises_sweep_error(self):
        bad = [
            SweepTask(
                task_id="crash-forever",
                experiment="_crash",
                params={"crash_attempts": 99},
            )
        ]
        with pytest.raises(SweepError) as err:
            ParallelRunner(jobs=2, retries=1).run(bad)
        assert err.value.failures[0][0].task_id == "crash-forever"

    def test_timeout_then_retry_succeeds(self):
        slow = [
            SweepTask(
                task_id="slow",
                experiment="_sleep",
                params={"seconds": 1.5, "hang_attempts": 1},
            )
        ]
        runner = ParallelRunner(jobs=2, retries=1, timeout_s=0.4)
        results = runner.run(slow)
        assert results[0].payload == {"slept": True, "attempt": 1}
        assert runner.last_run_info["timeouts"] == 1

    def test_zero_retries_fails_fast(self):
        bad = [SweepTask(task_id="c", experiment="_crash", params={})]
        with pytest.raises(SweepError):
            ParallelRunner(jobs=2, retries=0).run(bad)


class TestExperimentIdentity:
    """Serial vs parallel bit-identity on real (tiny) experiments."""

    def test_fig2_bit_identical(self):
        from repro.experiments import run_fig2

        scenario = ScenarioConfig.tiny()
        serial = run_fig2(scenario)
        pooled = run_fig2(scenario, runner=ParallelRunner(jobs=2))
        assert (serial.days == pooled.days).all()
        for key in ("sharers", "freeriders"):
            assert np.array_equal(serial.rank[key], pooled.rank[key], equal_nan=True)
            assert np.array_equal(serial.ban[key], pooled.ban[key], equal_nan=True)
        for delta in serial.delta_sweep:
            assert np.array_equal(
                serial.delta_sweep[delta], pooled.delta_sweep[delta], equal_nan=True
            )

    def test_fig3_bit_identical_under_crash_retry(self):
        """Identity holds even when a crash forces a pool rebuild mid-sweep."""
        from repro.experiments import fig3_tasks, assemble_fig3, run_fig3

        scenario = ScenarioConfig.tiny()
        pcts = (0, 25, 50)
        serial = run_fig3(scenario, kind="ignore", percentages=pcts)
        tasks = fig3_tasks(scenario, "ignore", pcts)
        tasks.insert(1, SweepTask(task_id="crash", experiment="_crash", params={}))
        payloads = run_sweep(tasks, runner=ParallelRunner(jobs=2, retries=1))
        del payloads[1]  # drop the crash fixture's payload
        pooled = assemble_fig3(payloads, "ignore", pcts)
        assert np.array_equal(
            serial.sharer_speed_kbps, pooled.sharer_speed_kbps, equal_nan=True
        )
        assert np.array_equal(
            serial.freerider_speed_kbps, pooled.freerider_speed_kbps, equal_nan=True
        )

    def test_whitewash_identity(self):
        from repro.experiments import run_whitewash

        serial = [run_whitewash(k, seed=7) for k in ("trusted", "static")]
        pooled = run_sweep(
            whitewash_tasks(7, ("trusted", "static")), runner=ParallelRunner(jobs=2)
        )
        for s, p in zip(serial, pooled):
            assert s.service == p.service
            assert s.identities_burned == p.identities_burned


class TestMetricsMerge:
    def test_kernel_and_metric_totals_match_serial(self):
        from repro.experiments import run_fig3

        scenario = ScenarioConfig.tiny()
        pcts = (0, 50)

        serial_metrics = MetricsRegistry()
        serial_base = snapshot_kernel_invocations()
        run_fig3(scenario, kind="ignore", percentages=pcts,
                 obs=Observability(metrics=serial_metrics))
        serial_kernels = kernel_invocations_delta(serial_base)

        pooled_metrics = MetricsRegistry()
        pooled_obs = Observability(metrics=pooled_metrics)
        pooled_base = snapshot_kernel_invocations()
        run_fig3(scenario, kind="ignore", percentages=pcts, obs=pooled_obs,
                 runner=ParallelRunner(jobs=2, obs=pooled_obs))
        pooled_kernels = kernel_invocations_delta(pooled_base)

        assert serial_kernels == pooled_kernels
        s1, s2 = serial_metrics.snapshot(), pooled_metrics.snapshot()
        assert sorted(s1) == sorted(s2)
        for name in s1:
            kind = s1[name]["type"]
            if kind in ("counter", "gauge"):
                assert s1[name]["value"] == pytest.approx(s2[name]["value"]), name
            else:  # timers/histograms measure wall time; only counts merge
                assert s1[name]["count"] == s2[name]["count"], name


class TestCliJobs:
    @pytest.fixture(autouse=True)
    def tiny_profiles(self, monkeypatch):
        monkeypatch.setattr(
            ScenarioConfig,
            "named",
            classmethod(lambda cls, profile, seed=42: ScenarioConfig.tiny(seed)),
        )

    def test_fig2_export_byte_identical(self, capsys, tmp_path):
        from repro import cli

        d1, d2 = tmp_path / "j1", tmp_path / "j2"
        assert cli.main(["fig2", "--seed", "3", "--export", str(d1)]) == 0
        assert cli.main(
            ["fig2", "--seed", "3", "--export", str(d2), "--jobs", "2"]
        ) == 0
        capsys.readouterr()
        files = sorted(p.name for p in d1.glob("*.tsv"))
        assert files
        for name in files:
            assert (d1 / name).read_bytes() == (d2 / name).read_bytes()

    def test_all_jobs_manifest_notes_partition(self, capsys, tmp_path):
        import json

        from repro import cli

        out = tmp_path / "out"
        assert cli.main(
            ["all", "--seed", "3", "--jobs", "2", "--metrics", "--export", str(out)]
        ) == 0
        capsys.readouterr()
        manifest = json.loads((out / "run_manifest.json").read_text())
        note = manifest["extra"]["parallel"]
        assert note["mode"] == "pool"
        assert note["jobs"] == 2
        # fig1 + fig2 (rank + 3 deltas) + fig3 (2 kinds x 6 pcts) + fig4
        assert len(note["tasks"]) == 18
