"""Unit tests for adversarial message behaviours."""

import pytest

from repro.core.adversary import HonestBehavior, Ignorer, SelfishLiar
from repro.core.node import BarterCastNode
from repro.core.reputation import MB


@pytest.fixture
def busy_node():
    n = BarterCastNode("liar")
    n.record_download("v1", 100 * MB, now=1.0)
    n.record_download("v2", 50 * MB, now=2.0)
    n.record_upload("v3", 10 * MB, now=3.0)
    return n


class TestHonest:
    def test_message_reflects_true_history(self, busy_node):
        busy_node.behavior = HonestBehavior()
        msg = busy_node.create_message(now=5.0)
        recs = {r.counterparty: r for r in msg.records}
        assert recs["v1"].downloaded == 100 * MB
        assert recs["v1"].uploaded == 0.0
        assert recs["v3"].uploaded == 10 * MB

    def test_name(self):
        assert HonestBehavior().name == "honest"


class TestIgnorer:
    def test_never_sends(self, busy_node):
        busy_node.behavior = Ignorer()
        assert busy_node.create_message(now=5.0) is None

    def test_still_receives(self, busy_node):
        from repro.core.messages import BarterCastMessage, HistoryRecord

        busy_node.behavior = Ignorer()
        msg = BarterCastMessage("r", 1.0, records=(HistoryRecord("c", 5.0, 1.0),))
        assert busy_node.receive_message(msg) == 1

    def test_name(self):
        assert Ignorer().name == "ignore"


class TestSelfishLiar:
    def test_lies_are_huge_and_one_sided(self, busy_node):
        busy_node.behavior = SelfishLiar()
        msg = busy_node.create_message(now=5.0)
        for r in msg.records:
            assert r.uploaded >= 1e9
            assert r.downloaded == 0.0

    def test_counterparties_are_real(self, busy_node):
        busy_node.behavior = SelfishLiar()
        msg = busy_node.create_message(now=5.0)
        parties = {r.counterparty for r in msg.records}
        assert parties <= {"v1", "v2", "v3"}

    def test_configurable_lie_size(self, busy_node):
        busy_node.behavior = SelfishLiar(lie_upload_bytes=7.0)
        msg = busy_node.create_message(now=5.0)
        assert all(r.uploaded == 7.0 for r in msg.records)

    def test_invalid_lie_size(self):
        with pytest.raises(ValueError):
            SelfishLiar(lie_upload_bytes=0.0)

    def test_lie_cannot_inflate_beyond_maxflow_bound(self):
        """End-to-end: a liar's claims at an evaluator are capped by the
        evaluator's real incoming service (the paper's key property)."""
        liar = BarterCastNode("liar", behavior=SelfishLiar())
        evaluator = BarterCastNode("eva")
        # The liar interacted with v (downloaded); it will lie about v.
        liar.record_download("v", 10 * MB, now=1.0)
        # The evaluator received only 20 MB of real service from v.
        evaluator.record_download("v", 20 * MB, now=1.0)
        msg = liar.create_message(now=2.0)
        evaluator.receive_message(msg)
        rep = evaluator.reputation_of("liar")
        cap = evaluator.config.metric.scale(20 * MB)
        assert rep <= cap + 1e-12

    def test_name(self):
        assert SelfishLiar().name == "lie"
