"""Integration tests for the figure drivers (tiny profile)."""

import numpy as np
import pytest

from repro.deployment.network import DeploymentParams
from repro.experiments import (
    ScenarioConfig,
    build_simulation,
    report,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
)
from repro.core.policies import BanPolicy, NoPolicy


@pytest.fixture(scope="module")
def tiny():
    return ScenarioConfig.tiny(seed=17)


class TestScenario:
    def test_named_profiles(self):
        assert ScenarioConfig.named("paper").name == "paper"
        assert ScenarioConfig.named("fast").name == "fast"
        assert ScenarioConfig.named("tiny").name == "tiny"
        with pytest.raises(ValueError):
            ScenarioConfig.named("huge")

    def test_with_seed(self, tiny):
        other = tiny.with_seed(99)
        assert other.seed == 99
        assert tiny.seed == 17  # original untouched

    def test_paper_profile_matches_paper_parameters(self):
        s = ScenarioConfig.paper()
        assert s.trace_params.num_peers == 100
        assert s.trace_params.num_swarms == 10
        assert s.trace_params.duration == 7 * 86400.0
        assert s.trace_params.uplink_bps == 512 * 1024
        assert s.trace_params.downlink_bps == 3 * 1024**2
        assert s.bt_config.seed_time == 10 * 3600.0
        assert s.bc_config.n_highest == 10
        assert s.bc_config.n_recent == 10
        assert s.freerider_fraction == 0.5

    def test_build_simulation_paired_populations(self, tiny):
        sim_a = build_simulation(tiny, policy=NoPolicy())
        sim_b = build_simulation(tiny, policy=BanPolicy(-0.5))
        assert sim_a.roles.roles == sim_b.roles.roles


@pytest.fixture(scope="module")
def fig1_result(tiny):
    return run_fig1(tiny)


class TestFig1:
    def test_series_shapes_align(self, fig1_result):
        r = fig1_result
        assert len(r.times_days) == len(r.sharer_reputation) == len(r.freerider_reputation)
        assert len(r.peer_ids) == len(r.net_contribution_gb) == len(r.system_reputation)

    def test_reputations_in_range(self, fig1_result):
        assert np.all(np.abs(fig1_result.system_reputation) < 1.0)

    def test_sharers_end_above_freeriders(self, fig1_result):
        assert fig1_result.final_separation > 0.0

    def test_contribution_reputation_consistency(self, fig1_result):
        # The paper's headline claim for 1(b): a consistent relation.  At
        # the tiny smoke-test scale the correlation is noisy, so we only
        # require it to be clearly positive; the fast-profile benchmark
        # (bench_fig1_reputation) asserts the strong version.
        assert fig1_result.spearman > 0.2

    def test_report_renders(self, fig1_result):
        text = report.report_fig1(fig1_result)
        assert "Figure 1(a)" in text and "Figure 1(b)" in text
        assert "spearman" in text


@pytest.fixture(scope="module")
def fig2_result(tiny):
    return run_fig2(tiny, deltas=(-0.3, -0.5), ban_delta=-0.5)


class TestFig2:
    def test_panels_present(self, fig2_result):
        assert set(fig2_result.rank) == {"sharers", "freeriders"}
        assert set(fig2_result.ban) == {"sharers", "freeriders"}
        assert set(fig2_result.delta_sweep) == {-0.3, -0.5}

    def test_days_axis_covers_duration(self, fig2_result, tiny):
        assert len(fig2_result.days) == int(np.ceil(tiny.trace_params.duration / 86400.0))

    def test_speeds_positive_where_defined(self, fig2_result):
        for series in (*fig2_result.rank.values(), *fig2_result.ban.values()):
            vals = series[~np.isnan(series)]
            assert (vals >= 0).all()

    def test_ban_delta_added_to_sweep_if_missing(self, tiny):
        result = run_fig2(tiny, deltas=(-0.3,), ban_delta=-0.5)
        assert -0.5 in result.delta_sweep

    def test_final_ratio_finite(self, fig2_result):
        assert np.isfinite(fig2_result.final_ratio("rank"))
        assert np.isfinite(fig2_result.final_ratio("ban"))

    def test_report_renders(self, fig2_result):
        text = report.report_fig2(fig2_result)
        for tag in ("Figure 2(a)", "Figure 2(b)", "Figure 2(c)"):
            assert tag in text


@pytest.fixture(scope="module")
def fig3_result(tiny):
    return run_fig3(tiny, kind="ignore", percentages=(0, 50))


class TestFig3:
    def test_axis_alignment(self, fig3_result):
        assert len(fig3_result.percentages) == 2
        assert len(fig3_result.sharer_speed_kbps) == 2

    def test_relative_speed_computable(self, fig3_result):
        rel = fig3_result.relative_freerider_speed()
        assert rel.shape == fig3_result.percentages.shape

    def test_unknown_kind_rejected(self, tiny):
        with pytest.raises(ValueError):
            run_fig3(tiny, kind="sabotage")

    def test_percentage_beyond_freeriders_rejected(self, tiny):
        with pytest.raises(ValueError):
            run_fig3(tiny, kind="lie", percentages=(80,))

    def test_report_renders(self, fig3_result):
        text = report.report_fig3(fig3_result)
        assert "Figure 3(a)" in text

    def test_lie_kind_runs(self, tiny):
        result = run_fig3(tiny, kind="lie", percentages=(25,))
        assert result.kind == "lie"
        assert "Figure 3(b)" in report.report_fig3(result)


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4(DeploymentParams(num_peers=400), seed=6)


class TestFig4:
    def test_panels_present(self, fig4_result):
        assert fig4_result.peers_seen > 300
        assert fig4_result.net_contribution.shape == (fig4_result.peers_seen,)
        assert fig4_result.reputation_values.shape == fig4_result.reputation_cdf.shape

    def test_cdf_monotone(self, fig4_result):
        assert (np.diff(fig4_result.reputation_cdf) >= 0).all()
        assert (np.diff(fig4_result.reputation_values) >= 0).all()

    def test_majority_net_negative(self, fig4_result):
        assert fig4_result.fraction_net_negative > 0.5

    def test_negative_reputation_dominates_positive(self, fig4_result):
        assert fig4_result.fractions["negative"] > fig4_result.fractions["positive"]

    def test_report_renders(self, fig4_result):
        text = report.report_fig4(fig4_result)
        assert "Figure 4(a)" in text and "Figure 4(b)" in text


class TestSpeedSeriesHelper:
    def test_cumulative_series_is_running_average(self):
        from repro.bittorrent.stats import StatsCollector
        from repro.experiments.fig2 import speed_series_kbps

        stats = StatsCollector(peer_ids=[1, 2], duration=2 * 86400.0,
                               bucket_seconds=6 * 3600.0)
        # 1024 KB in the first bucket over 1000 s of leeching...
        stats.record_transfer(2, 1, 1024.0 * 1024, now=1000.0)
        stats.record_leech_time(1, 1000.0, now=1000.0)
        # ...then nothing: the cumulative average must stay flat, not NaN.
        days, speeds = speed_series_kbps(stats, [1], cumulative=True)
        assert len(days) == 2
        assert speeds[0] == speeds[1] == pytest.approx(1024.0 / 1000.0 * 1000 / 1000, rel=0.5)

    def test_cumulative_vs_bucket_mode_differ(self):
        from repro.bittorrent.stats import StatsCollector
        from repro.experiments.fig2 import speed_series_kbps

        stats = StatsCollector(peer_ids=[1, 2], duration=2 * 86400.0,
                               bucket_seconds=6 * 3600.0)
        stats.record_transfer(2, 1, 1024.0 * 100, now=1000.0)
        stats.record_leech_time(1, 100.0, now=1000.0)
        stats.record_transfer(2, 1, 1024.0 * 400, now=86400.0 + 1000.0)
        stats.record_leech_time(1, 100.0, now=86400.0 + 1000.0)
        _, cumulative = speed_series_kbps(stats, [1], cumulative=True)
        _, per_bucket = speed_series_kbps(stats, [1], cumulative=False)
        # Per-bucket: day 2 shows only day-2 speed (4 KBps); cumulative
        # blends both days (2.5 KBps).
        assert per_bucket[1] == pytest.approx(4.0)
        assert cumulative[1] == pytest.approx(2.5)

    def test_empty_group(self):
        from repro.bittorrent.stats import StatsCollector
        from repro.experiments.fig2 import speed_series_kbps

        stats = StatsCollector(peer_ids=[1], duration=86400.0, bucket_seconds=3600.0)
        days, speeds = speed_series_kbps(stats, [])
        assert np.isnan(speeds).all()
