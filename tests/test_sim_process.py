"""Unit tests for periodic processes."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry


class TestPeriodicProcess:
    def test_fires_at_multiples_of_interval(self):
        sim = Simulator()
        times = []
        PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
        sim.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_start_delay_controls_first_tick(self):
        sim = Simulator()
        times = []
        PeriodicProcess(sim, 10.0, lambda: times.append(sim.now), start_delay=0.0)
        sim.run_until(25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_tick_counter(self):
        sim = Simulator()
        proc = PeriodicProcess(sim, 5.0, lambda: None)
        sim.run_until(23.0)
        assert proc.ticks == 4

    def test_stop_halts_future_ticks(self):
        sim = Simulator()
        times = []
        proc = PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
        sim.schedule(15.0, proc.stop)
        sim.run_until(100.0)
        assert times == [10.0]
        assert proc.stopped

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        proc_holder = {}

        def cb():
            proc_holder["p"].stop()

        proc_holder["p"] = PeriodicProcess(sim, 10.0, cb)
        sim.run_until(100.0)
        assert proc_holder["p"].ticks == 1

    def test_nonpositive_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicProcess(sim, 0.0, lambda: None)
        with pytest.raises(SimulationError):
            PeriodicProcess(sim, -1.0, lambda: None)

    def test_jitter_requires_rng(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicProcess(sim, 10.0, lambda: None, jitter=1.0)

    def test_negative_jitter_rejected(self):
        sim = Simulator()
        rng = RngRegistry(0).stream("t")
        with pytest.raises(SimulationError):
            PeriodicProcess(sim, 10.0, lambda: None, jitter=-1.0, rng=rng)

    def test_jitter_displaces_ticks_within_bound(self):
        sim = Simulator()
        rng = RngRegistry(7).stream("jitter")
        times = []
        PeriodicProcess(sim, 10.0, lambda: times.append(sim.now), jitter=3.0, rng=rng)
        sim.run_until(200.0)
        assert len(times) >= 10
        for i, t in enumerate(times):
            base = sum([10.0] * (i + 1))  # i+1 full intervals
            # Each tick is base + accumulated jitter in [0, 3*(i+1)).
            assert base <= t < base + 3.0 * (i + 1)

    def test_interval_property(self):
        sim = Simulator()
        proc = PeriodicProcess(sim, 2.5, lambda: None)
        assert proc.interval == 2.5

    def test_two_processes_interleave(self):
        sim = Simulator()
        events = []
        PeriodicProcess(sim, 10.0, lambda: events.append("a"))
        PeriodicProcess(sim, 15.0, lambda: events.append("b"))
        sim.run_until(30.0)
        # At t=30 both fire; b's event was scheduled earlier (at t=15) than
        # a's (at t=20), so insertion order puts b first.
        assert events == ["a", "b", "a", "b", "a"]
