"""Tests for the fault-injection layer (channel, churn, auditor, sweep).

The three load-bearing guarantees:

* **default-off bit-identity** — with every fault knob at 0 the layer is
  never constructed, and a run is byte-identical (exports included) to a
  run without the layer;
* **the ground-truth envelope** — under arbitrary fault schedules no
  subjective view ever materializes an edge above the maximum honest
  claim, and reputations stay inside (−1, 1);
* **monotone degradation** — reputation coverage is non-increasing in
  the loss level (the channel draws the same uniforms at every level, so
  delivered-message sets are nested).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.faults import run_fault_point, run_faults
from repro.experiments.scenario import ScenarioConfig, build_simulation
from repro.faults import (
    MAX_COPIES,
    ChannelModel,
    ChurnInjector,
    FaultConfig,
    audit_simulation,
    max_honest_claim,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def stream(seed=7, name="faults.channel"):
    return RngRegistry(seed).stream(name)


# ---------------------------------------------------------------------------
# FaultConfig
# ---------------------------------------------------------------------------
class TestFaultConfig:
    def test_default_is_null(self):
        assert FaultConfig().is_null
        assert not FaultConfig().has_channel_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": 0.1},
            {"duplicate": 0.2},
            {"delay_max": 5.0},
            {"churn_rate": 1.0},
            {"connectable_fraction": 0.2},
        ],
    )
    def test_any_knob_breaks_null(self, kwargs):
        assert not FaultConfig(**kwargs).is_null

    def test_churn_only_has_no_channel_faults(self):
        cfg = FaultConfig(churn_rate=2.0)
        assert not cfg.has_channel_faults
        assert not cfg.is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": 1.1},
            {"loss": -0.1},
            {"duplicate": 1.1},
            {"duplicate": -0.1},
            {"delay_max": -1.0},
            {"churn_rate": -0.5},
            {"churn_downtime": 0.0},
            {"churn_wipe_prob": 1.5},
            {"connectable_fraction": 0.0},
        ],
    )
    def test_validate_rejects(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs).validate()

    @pytest.mark.parametrize("kwargs", [{"loss": 1.0}, {"duplicate": 1.0}])
    def test_validate_accepts_extreme_knobs(self, kwargs):
        # Regression: loss=1.0 (blackout) and duplicate=1.0 (geometric
        # continuation saturating at MAX_COPIES) are valid extreme points
        # the fault sweep drives; validate() used to reject them.
        FaultConfig(**kwargs).validate()


# ---------------------------------------------------------------------------
# ChannelModel
# ---------------------------------------------------------------------------
class TestChannelModel:
    def test_faultless_config_delivers_exactly_once_inline(self):
        ch = ChannelModel(FaultConfig(), stream())
        for i in range(50):
            assert ch.plan_delivery("a", "b", float(i)) == [float(i)]
        assert ch.delivered == 50
        assert ch.dropped == ch.duplicated == ch.delayed == 0

    def test_loss_drops_roughly_at_rate(self):
        ch = ChannelModel(FaultConfig(loss=0.4), stream())
        n = 2000
        for i in range(n):
            ch.plan_delivery("a", "b", float(i))
        assert 0.3 < ch.dropped / n < 0.5
        assert ch.delivered + ch.dropped == n

    def test_duplication_bounded_by_cap(self):
        ch = ChannelModel(FaultConfig(duplicate=0.9), stream())
        for i in range(500):
            times = ch.plan_delivery("a", "b", float(i))
            assert 1 <= len(times) <= MAX_COPIES
        assert ch.duplicated > 0

    def test_delay_within_bound(self):
        cfg = FaultConfig(delay_max=30.0)
        ch = ChannelModel(cfg, stream())
        for i in range(200):
            now = float(i)
            for t in ch.plan_delivery("a", "b", now):
                assert now <= t <= now + cfg.delay_max

    def test_unconnectable_pair_always_dropped(self):
        ch = ChannelModel(FaultConfig(connectable_fraction=0.5), stream())
        # Find two unconnectable peers, then their channel is dead.
        bad = [p for p in range(40) if not ch.is_connectable(p)]
        assert len(bad) >= 2
        assert ch.plan_delivery(bad[0], bad[1], 1.0) == []
        # One connectable endpoint is enough to carry.
        good = [p for p in range(40) if ch.is_connectable(p)]
        assert ch.plan_delivery(good[0], bad[0], 1.0) == [1.0]

    def test_connectability_memoized(self):
        ch = ChannelModel(FaultConfig(connectable_fraction=0.3), stream())
        first = [ch.is_connectable(p) for p in range(30)]
        again = [ch.is_connectable(p) for p in range(30)]
        assert first == again

    def test_note_undeliverable_counts_drop(self):
        ch = ChannelModel(FaultConfig(delay_max=10.0), stream())
        ch.note_undeliverable("a", "b", 5.0)
        assert ch.dropped == 1

    def test_deterministic_across_instances(self):
        cfg = FaultConfig(loss=0.3, duplicate=0.2, delay_max=60.0)
        a = ChannelModel(cfg, stream(seed=11))
        b = ChannelModel(cfg, stream(seed=11))
        plans_a = [a.plan_delivery("x", "y", float(i)) for i in range(300)]
        plans_b = [b.plan_delivery("x", "y", float(i)) for i in range(300)]
        assert plans_a == plans_b


# ---------------------------------------------------------------------------
# ChurnInjector
# ---------------------------------------------------------------------------
class TestChurnInjector:
    def make(self, seed=5, **kwargs):
        cfg = FaultConfig(churn_rate=kwargs.pop("churn_rate", 24.0), **kwargs)
        engine = Simulator()
        events = []
        inj = ChurnInjector(
            cfg,
            engine,
            stream(seed=seed, name="faults.churn"),
            peers=list(range(10)),
            horizon=86400.0,
            on_down=lambda p, t: events.append(("down", p, t)),
            on_rejoin=lambda p, t, wiped: events.append(("up", p, t, wiped)),
        )
        engine.run_until(86400.0)
        return inj, events

    def test_crashes_and_rejoins_fire(self):
        inj, events = self.make()
        downs = [e for e in events if e[0] == "down"]
        ups = [e for e in events if e[0] == "up"]
        assert inj.crashes == len(downs) > 0
        assert len(ups) > 0
        assert 0 <= inj.wipes <= inj.crashes

    def test_rejoin_follows_crash(self):
        _, events = self.make()
        down_at = {}
        for e in events:
            if e[0] == "down":
                down_at[e[1]] = e[2]
            else:
                assert e[1] in down_at and e[2] >= down_at[e[1]]

    def test_requires_positive_rate(self):
        with pytest.raises(ValueError):
            ChurnInjector(
                FaultConfig(),
                Simulator(),
                stream(name="faults.churn"),
                peers=[0],
                horizon=10.0,
            )

    def test_deterministic_schedule(self):
        _, ev1 = self.make(seed=9)
        _, ev2 = self.make(seed=9)
        assert ev1 == ev2


# ---------------------------------------------------------------------------
# Default-off bit-identity
# ---------------------------------------------------------------------------
class TestBitIdentity:
    def test_null_config_runs_byte_identical(self, tmp_path):
        from repro.analysis.export import export_fig1, write_series
        from repro.experiments.fig1 import run_fig1

        scenario = ScenarioConfig.tiny()
        outs = []
        for tag, faults in (("none", None), ("null", FaultConfig())):
            result = run_fig1(scenario.with_faults(faults))
            paths = write_series(export_fig1(result), tmp_path / tag)
            outs.append({p.name: p.read_bytes() for p in paths})
        assert outs[0] == outs[1]

    def test_null_config_skips_fault_layer(self):
        sim = build_simulation(ScenarioConfig.tiny().with_faults(FaultConfig()))
        assert sim.channel is None
        assert sim.churn is None
        # ... and therefore the fault RNG streams are never created, so
        # every other stream's draw sequence is untouched.

    def test_faulty_config_changes_results(self):
        base = build_simulation(ScenarioConfig.tiny())
        base.run()
        faulty = build_simulation(
            ScenarioConfig.tiny().with_faults(FaultConfig(loss=0.5))
        )
        faulty.run()
        edges = lambda sim: sum(
            len(list(n.graph.edges())) for n in sim.nodes.values()
        )
        assert edges(faulty) < edges(base)


# ---------------------------------------------------------------------------
# The invariant auditor, under random fault schedules
# ---------------------------------------------------------------------------
class TestAuditor:
    def test_max_honest_claim_reads_both_ledgers(self):
        from repro.core.history import PrivateHistory

        a, b = PrivateHistory("a"), PrivateHistory("b")
        a.record_upload("b", 100.0, now=1.0)
        b.record_download("a", 80.0, now=1.0)  # (partial observation)
        assert max_honest_claim({"a": a, "b": b}, "a", "b") == 100.0
        assert max_honest_claim({"a": a, "b": b}, "b", "a") == 0.0

    def test_clean_run_audits_clean(self):
        sim = build_simulation(ScenarioConfig.tiny())
        sim.run()
        assert audit_simulation(sim, max_rep_targets=5) == []

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        loss=st.floats(min_value=0.0, max_value=0.8),
        duplicate=st.floats(min_value=0.0, max_value=0.5),
        delay=st.floats(min_value=0.0, max_value=600.0),
        churn=st.floats(min_value=0.0, max_value=6.0),
        connectable=st.floats(min_value=0.2, max_value=1.0),
    )
    def test_envelope_holds_under_random_fault_schedules(
        self, seed, loss, duplicate, delay, churn, connectable
    ):
        faults = FaultConfig(
            loss=loss,
            duplicate=duplicate,
            delay_max=delay,
            churn_rate=churn,
            connectable_fraction=connectable,
        )
        scenario = ScenarioConfig.tiny(seed=seed % 97).with_faults(faults)
        sim = build_simulation(scenario)
        sim.run()
        # No fault combination may ever let a subjective view exceed the
        # honest-claim envelope or push a reputation out of (−1, 1).
        assert audit_simulation(sim, max_rep_targets=3) == []


# ---------------------------------------------------------------------------
# The sweep experiment
# ---------------------------------------------------------------------------
class TestFaultSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_faults(
            ScenarioConfig.tiny(), losses=(0.0, 0.3, 0.6), churn=0.0
        )

    def test_coverage_monotone_in_loss(self, sweep):
        cov = sweep.coverage_curve()
        assert cov == sorted(cov, reverse=True)
        assert cov[0] > cov[-1]  # 60% loss visibly degrades coverage

    def test_fault_free_point_has_silent_channel(self, sweep):
        p0 = sweep.points[0]
        assert p0.loss == 0.0
        assert p0.messages_dropped == 0
        assert p0.messages_delivered == 0  # no channel constructed at all

    def test_telemetry_tracks_loss(self, sweep):
        p1, p2 = sweep.points[1], sweep.points[2]
        assert p2.messages_dropped > p1.messages_dropped > 0

    def test_no_audit_violations(self, sweep):
        assert sweep.total_violations == 0

    def test_rates_are_probabilities(self, sweep):
        for p in sweep.points:
            assert 0.0 <= p.coverage <= 1.0
            assert 0.0 <= p.false_ban_rate <= 1.0
            assert 0.0 <= p.rank_inversion_rate <= 1.0

    def test_single_point_matches_sweep(self, sweep):
        point = run_fault_point(ScenarioConfig.tiny(), FaultConfig(loss=0.3))
        assert point == sweep.points[1]

    def test_export_shape(self, sweep):
        from repro.analysis.export import export_faults

        tables = export_faults(sweep)
        table = tables["faults_sweep"]
        assert len(table["rows"]) == 3
        assert len(table["header"]) == len(table["rows"][0])

    def test_report_renders(self, sweep):
        from repro.experiments.report import report_faults

        text = report_faults(sweep)
        assert "coverage" in text and "0 violation" in text


class TestChurnInSimulation:
    def test_churn_run_stays_within_envelope(self):
        faults = FaultConfig(churn_rate=4.0, churn_wipe_prob=1.0)
        sim = build_simulation(ScenarioConfig.tiny().with_faults(faults))
        sim.run()
        assert sim.churn is not None
        assert sim.churn.crashes > 0
        assert sim.churn.wipes == sim.churn.crashes
        assert audit_simulation(sim, max_rep_targets=3) == []

    def test_wipe_degrades_coverage(self):
        clean = run_fault_point(ScenarioConfig.tiny(), FaultConfig())
        churned = run_fault_point(
            ScenarioConfig.tiny(),
            FaultConfig(churn_rate=6.0, churn_wipe_prob=1.0),
        )
        assert churned.coverage < clean.coverage
        assert churned.crashes > 0


# ---------------------------------------------------------------------------
# Mechanism sweep: the engine grid over identical seeded schedules
# ---------------------------------------------------------------------------
class TestGoldenPin:
    """Values the `engine="bartercast"` sweep produced before the engine
    layer existed, captured on the tiny profile.  Exact equality (not
    approx): the default path must stay byte-identical through any
    refactor of the engine dispatch, the convergence sampler, or the
    sweep plumbing."""

    # (churn, loss) -> (coverage, false_ban, rank_inversion,
    #                   delivered, dropped, duplicated, delayed,
    #                   crashes, wipes, violations)
    GOLDEN = {
        (0.0, 0.0): (0.8738576390403887, 0.03296703296703297,
                     0.033854166666666664, 0, 0, 0, 0, 0, 0, 0),
        (0.0, 0.25): (0.8630495828631111, 0.03296703296703297,
                      0.033854166666666664, 7437, 2523, 0, 0, 0, 0, 0),
        (2.0, 0.0): (0.34353611224800246, 0.0, 0.05303030303030303,
                     0, 0, 0, 0, 43, 21, 0),
        (2.0, 0.25): (0.34353611224800246, 0.0, 0.05303030303030303,
                      6949, 2353, 0, 0, 43, 21, 0),
    }

    def test_default_engine_sweep_is_bit_identical_to_pre_engine_build(self):
        result = run_faults(
            ScenarioConfig.tiny(), losses=(0.0, 0.25), churn=(0.0, 2.0)
        )
        assert len(result.points) == len(self.GOLDEN)
        for p in result.points:
            assert p.engine == "bartercast"
            got = (
                p.coverage, p.false_ban_rate, p.rank_inversion_rate,
                p.messages_delivered, p.messages_dropped,
                p.messages_duplicated, p.messages_delayed,
                p.crashes, p.wipes, p.audit_violations,
            )
            assert got == self.GOLDEN[(p.churn, p.loss)]

        # The default sweep also keeps its historical export surface:
        # one table, the legacy name, no engine column.
        from repro.analysis.export import export_faults

        tables = export_faults(result)
        assert set(tables) == {"faults_sweep"}


class TestExtremeKnobs:
    """The fault harness at the edges of its knob ranges, per engine.

    Regressions for the sweep generalization: loss=1.0 (used to be
    rejected by validate), duplicate=1.0 (geometric continuation pinned
    at MAX_COPIES), and churn with near-immediate rejoin (downtime ≪
    gossip interval) must complete with a clean audit under every
    mechanism, and every measure must stay a well-defined probability —
    never NaN."""

    ENGINES = ("bartercast", "gossip", "ratio")

    def _check(self, point):
        assert point.audit_violations == 0
        for rate in (point.coverage, point.false_ban_rate,
                     point.rank_inversion_rate):
            assert 0.0 <= rate <= 1.0  # also fails on NaN
        assert point.convergence_time >= 0.0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_total_blackout(self, engine):
        point = run_fault_point(
            ScenarioConfig.tiny(), FaultConfig(loss=1.0), engine=engine
        )
        assert point.messages_delivered == 0
        assert point.messages_dropped > 0
        self._check(point)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_duplication_cap_saturation(self, engine):
        point = run_fault_point(
            ScenarioConfig.tiny(), FaultConfig(duplicate=1.0), engine=engine
        )
        # Every message spawns copies up to the cap: exactly
        # MAX_COPIES - 1 duplicates per delivered original.
        assert point.messages_duplicated > 0
        assert point.messages_delivered == point.messages_duplicated + (
            point.messages_delivered // MAX_COPIES
        )
        self._check(point)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_churn_with_immediate_rejoin(self, engine):
        point = run_fault_point(
            ScenarioConfig.tiny(),
            FaultConfig(churn_rate=6.0, churn_downtime=1.0,
                        churn_wipe_prob=1.0),
            engine=engine,
        )
        assert point.crashes > 0
        self._check(point)


class TestMechanismSweep:
    @pytest.fixture(scope="class")
    def zoo(self):
        return run_faults(
            ScenarioConfig.tiny(),
            losses=(0.0, 0.25),
            churn=0.0,
            engines=("bartercast", "gossip", "ratio"),
        )

    def test_engines_grouped_in_registry_order(self, zoo):
        assert zoo.engines == ("bartercast", "gossip", "ratio")
        for engine in zoo.engines:
            assert [p.loss for p in zoo.points_for(engine)] == [0.0, 0.25]

    def test_identical_schedules_identical_coverage(self, zoo):
        # Under NoPolicy the engines are never consulted during the run,
        # so the byte flow — and therefore graph coverage — is identical
        # across mechanisms by construction.
        base = [p.coverage for p in zoo.points_for("bartercast")]
        for engine in ("gossip", "ratio"):
            assert [p.coverage for p in zoo.points_for(engine)] == base

    def test_mechanisms_disagree_on_bans(self, zoo):
        fban = {
            engine: zoo.points_for(engine)[0].false_ban_rate
            for engine in zoo.engines
        }
        # The ratio floor bans peers maxflow tolerates; if the rates were
        # equal the per-engine threshold translation would be dead code.
        assert fban["ratio"] != fban["bartercast"]

    def test_no_audit_violations_any_engine(self, zoo):
        assert zoo.total_violations == 0

    def test_rival_single_point_matches_sweep(self, zoo):
        point = run_fault_point(
            ScenarioConfig.tiny(), FaultConfig(loss=0.25), engine="ratio"
        )
        assert point == zoo.points_for("ratio")[1]

    def test_rival_task_ids_are_namespaced(self):
        from repro.experiments.faults import fault_tasks

        tasks = fault_tasks(
            ScenarioConfig.tiny(), losses=(0.0,), churn=0.0,
            engines=("bartercast", "ratio"),
        )
        ids = [t.task_id for t in tasks]
        assert ids == ["faults/loss0_churn0", "faults/ratio/loss0_churn0"]
        assert "engine" not in tasks[0].params  # historical task spec intact
        assert tasks[1].params["engine"] == "ratio"

    def test_export_one_table_per_engine(self, zoo):
        from repro.analysis.export import export_faults

        tables = export_faults(zoo)
        assert set(tables) == {
            "faults_sweep", "faults_sweep_gossip", "faults_sweep_ratio",
        }
        for table in tables.values():
            assert len(table["rows"]) == 2
            assert "convergence_time_s" in table["header"]

    def test_report_has_per_mechanism_sections(self, zoo):
        from repro.experiments.report import report_faults

        text = report_faults(zoo)
        for engine in zoo.engines:
            assert f"mechanism: {engine}" in text
        assert "converge-s" in text
