"""Unit tests for stranger policies and the whitewashing experiment."""

import pytest

from repro.core.node import BarterCastNode
from repro.core.policies import BanPolicy, RankPolicy
from repro.core.reputation import MB
from repro.core.whitewashing import (
    AdaptiveStrangerPenalty,
    StaticStrangerPenalty,
    TrustedIdentities,
    is_stranger,
)
from repro.experiments.whitewash import (
    WhitewashParams,
    run_whitewash,
    make_stranger_policy,
)
from repro.sim.rng import RngRegistry


@pytest.fixture
def node():
    n = BarterCastNode("me")
    n.record_download("friend", 300 * MB, now=1.0)
    n.record_upload("debtor", 300 * MB, now=1.0)
    return n


class TestIsStranger:
    def test_unknown_peer_is_stranger(self, node):
        assert is_stranger(node, "ghost")

    def test_direct_contact_is_not(self, node):
        assert not is_stranger(node, "friend")

    def test_self_is_not(self, node):
        assert not is_stranger(node, "me")

    def test_gossiped_about_peer_is_not(self, node):
        from repro.core.messages import BarterCastMessage, HistoryRecord

        node.receive_message(
            BarterCastMessage("friend", 2.0, (HistoryRecord("third", 10 * MB, 0.0),))
        )
        assert not is_stranger(node, "third")

    def test_isolated_graph_node_is_stranger(self, node):
        node.graph.add_node("floating")
        assert is_stranger(node, "floating")


class TestTrustedIdentities:
    def test_stranger_prior_zero(self, node):
        assert TrustedIdentities().effective_reputation(node, "ghost") == 0.0

    def test_known_peer_uses_raw_reputation(self, node):
        p = TrustedIdentities()
        assert p.effective_reputation(node, "friend") == node.reputation_of("friend")


class TestStaticPenalty:
    def test_stranger_gets_penalty(self, node):
        p = StaticStrangerPenalty(penalty=-0.3)
        assert p.effective_reputation(node, "ghost") == -0.3

    def test_known_peer_unaffected(self, node):
        p = StaticStrangerPenalty(penalty=-0.3)
        assert p.effective_reputation(node, "debtor") == node.reputation_of("debtor")

    def test_penalty_range_validated(self):
        with pytest.raises(ValueError):
            StaticStrangerPenalty(penalty=0.1)
        with pytest.raises(ValueError):
            StaticStrangerPenalty(penalty=-1.5)

    def test_observe_is_noop(self):
        p = StaticStrangerPenalty(-0.2)
        p.observe(-0.9)
        assert p.penalty == -0.2


class TestAdaptivePenalty:
    def test_starts_at_initial(self):
        assert AdaptiveStrangerPenalty(initial=-0.1).prior == -0.1

    def test_bad_outcomes_sink_prior(self):
        p = AdaptiveStrangerPenalty(alpha=0.5)
        for _ in range(10):
            p.observe(-0.9)
        assert p.prior < -0.5

    def test_good_outcomes_recover_prior(self):
        p = AdaptiveStrangerPenalty(alpha=0.5, initial=-0.8, floor=-0.8)
        for _ in range(20):
            p.observe(0.5)
        assert p.prior > -0.1

    def test_prior_clipped_to_floor_and_zero(self):
        p = AdaptiveStrangerPenalty(alpha=1.0, floor=-0.6)
        p.observe(-5.0)
        assert p.prior == -0.6
        p.observe(5.0)
        assert p.prior == 0.0

    def test_observation_counter(self):
        p = AdaptiveStrangerPenalty()
        p.observe(0.0)
        p.observe(-0.1)
        assert p.observations == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptiveStrangerPenalty(alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveStrangerPenalty(floor=0.5)
        with pytest.raises(ValueError):
            AdaptiveStrangerPenalty(floor=-0.5, initial=-0.9)


class TestPolicyIntegration:
    def test_ban_policy_uses_stranger_prior(self, node):
        ban = BanPolicy(delta=-0.5, stranger_policy=StaticStrangerPenalty(-0.6))
        assert not ban.allows(node, "ghost")  # stranger below threshold
        assert ban.allows(node, "friend")

    def test_ban_policy_without_stranger_policy_admits_strangers(self, node):
        assert BanPolicy(delta=-0.5).allows(node, "ghost")

    def test_rank_policy_orders_with_prior(self, node):
        rng = RngRegistry(1).stream("t")
        rank = RankPolicy(stranger_policy=StaticStrangerPenalty(-0.9))
        order = rank.order_optimistic(node, ["ghost", "debtor"], rng)
        # debtor's raw reputation (~ -0.5) beats the stranger prior (-0.9).
        assert order == ["debtor", "ghost"]


class TestWhitewashExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        params = WhitewashParams(rounds=80)
        return {
            kind: run_whitewash(kind, params, seed=5)
            for kind in ("trusted", "static", "adaptive")
        }

    def test_trusted_ids_make_whitewashing_free(self, results):
        assert results["trusted"].washer_advantage > 0.5

    def test_static_penalty_locks_washers_out(self, results):
        assert results["static"].service["washer"] == 0.0
        # ... but honest upload-first newcomers still get served.
        assert results["static"].service["newcomer"] > 10.0

    def test_adaptive_penalty_suppresses_washers(self, results):
        assert (
            results["adaptive"].washer_advantage
            < results["trusted"].washer_advantage
        )

    def test_adaptive_prior_learns_downward(self, results):
        trajectory = results["adaptive"].prior_trajectory
        assert trajectory[-1] < -0.3

    def test_identities_burned_counted(self, results):
        assert results["static"].identities_burned > results["trusted"].identities_burned / 2

    def test_unknown_policy_kind_rejected(self):
        with pytest.raises(ValueError):
            make_stranger_policy("oracle")

    def test_deterministic(self):
        params = WhitewashParams(rounds=30)
        a = run_whitewash("adaptive", params, seed=9)
        b = run_whitewash("adaptive", params, seed=9)
        assert a.service == b.service
        assert a.prior_trajectory == b.prior_trajectory
