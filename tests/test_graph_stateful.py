"""Stateful property test of the transfer graph.

Drives a :class:`TransferGraph` through random interleavings of its whole
mutation API while maintaining a naive dict model, and checks after every
step that the graph's aggregates (capacities, totals, degrees, net flows)
agree with the model.  This is the data structure every reputation in the
system is computed from; silent divergence here would corrupt everything
above it.
"""

from collections import defaultdict

from hypothesis import settings
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.graph.transfer_graph import TransferGraph

NODES = ["a", "b", "c", "d", "e"]


class GraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.graph = TransferGraph()
        self.model = defaultdict(float)  # (src, dst) -> bytes
        self.model_nodes = set()

    # ------------------------------------------------------------------
    @rule(node=st.sampled_from(NODES))
    def add_node(self, node):
        self.graph.add_node(node)
        self.model_nodes.add(node)

    @rule(
        src=st.sampled_from(NODES),
        dst=st.sampled_from(NODES),
        nbytes=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    )
    def add_transfer(self, src, dst, nbytes):
        if src == dst:
            return
        self.graph.add_transfer(src, dst, nbytes)
        self.model_nodes.update((src, dst))
        if nbytes > 0:
            self.model[(src, dst)] += nbytes

    @rule(
        src=st.sampled_from(NODES),
        dst=st.sampled_from(NODES),
        nbytes=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    )
    def set_transfer(self, src, dst, nbytes):
        if src == dst:
            return
        self.graph.set_transfer(src, dst, nbytes)
        self.model_nodes.update((src, dst))
        if nbytes > 0:
            self.model[(src, dst)] = nbytes
        else:
            self.model.pop((src, dst), None)

    @rule(node=st.sampled_from(NODES))
    def remove_node(self, node):
        self.graph.remove_node(node)
        self.model_nodes.discard(node)
        for edge in [e for e in self.model if node in e]:
            del self.model[edge]

    # ------------------------------------------------------------------
    @invariant()
    def capacities_match(self):
        for (src, dst), w in self.model.items():
            assert self.graph.capacity(src, dst) == w
        # And no phantom edges.
        assert self.graph.num_edges == len(self.model)

    @invariant()
    def nodes_match(self):
        assert set(self.graph.nodes()) == self.model_nodes

    @invariant()
    def totals_match(self):
        expected = sum(self.model.values())
        assert abs(self.graph.total_bytes - expected) < 1e-6 * max(1.0, expected)

    @invariant()
    def degrees_and_net_flow_match(self):
        for node in self.model_nodes:
            out_edges = {d: w for (s, d), w in self.model.items() if s == node}
            in_edges = {s: w for (s, d), w in self.model.items() if d == node}
            assert self.graph.out_degree(node) == len(out_edges)
            assert self.graph.in_degree(node) == len(in_edges)
            expected_net = sum(out_edges.values()) - sum(in_edges.values())
            assert abs(self.graph.net_flow(node) - expected_net) < 1e-6 * max(
                1.0, abs(expected_net)
            )

    @invariant()
    def adjacency_views_consistent(self):
        for node in self.model_nodes:
            for dst, w in self.graph.successors(node).items():
                assert self.graph.predecessors(dst)[node] == w


TestGraphStateful = GraphMachine.TestCase
TestGraphStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
