"""Unit and integration tests for the deployment substrate (Figure 4)."""

import numpy as np
import pytest

from repro.deployment.crawl import MeasurementCrawl
from repro.deployment.network import DeploymentNetwork, DeploymentParams

GB = 1024.0**3


@pytest.fixture(scope="module")
def network():
    return DeploymentNetwork(DeploymentParams(num_peers=600), seed=9)


@pytest.fixture(scope="module")
def crawl_result(network):
    return MeasurementCrawl(network, seed=9).run()


class TestNetworkGeneration:
    def test_population_size(self, network):
        assert len(network.peer_ids) == 600
        assert network.measurement_id == 600

    def test_edge_consistency_with_totals(self, network):
        # Totals = edge volume + external download; uploads come only from edges.
        up = {pid: 0.0 for pid in network.uploaded}
        for (src, dst), w in network.edges.items():
            up[src] += w
        for pid in network.peer_ids:
            assert network.uploaded[pid] == pytest.approx(up[pid])
            assert network.downloaded[pid] >= 0.0

    def test_fresh_peers_have_zero_transfers(self, network):
        fresh = [p for p, c in network.classes.items() if c == "fresh"]
        assert fresh, "expected some fresh installs"
        for pid in fresh:
            assert network.uploaded[pid] == 0.0
            assert network.downloaded[pid] == 0.0
            assert network.net_contribution(pid) == 0.0

    def test_majority_net_negative(self, network):
        nets = np.array([network.net_contribution(p) for p in network.peer_ids])
        assert (nets < 0).mean() > 0.5

    def test_altruists_reach_multi_gb(self, network):
        nets = np.array([network.net_contribution(p) for p in network.peer_ids])
        assert nets.max() > 4 * GB

    def test_histories_consistent_with_edges(self, network):
        # Spot-check: each edge appears in both endpoint ledgers.
        for (src, dst), w in list(network.edges.items())[:200]:
            assert network.histories[src].get(dst).uploaded == pytest.approx(w)
            assert network.histories[dst].get(src).downloaded == pytest.approx(w)

    def test_deterministic(self):
        n1 = DeploymentNetwork(DeploymentParams(num_peers=100), seed=4)
        n2 = DeploymentNetwork(DeploymentParams(num_peers=100), seed=4)
        assert n1.edges == n2.edges

    def test_internal_volume_matches_sampled_download(self, network):
        # Every peer's realized peer-to-peer inflow (edges not from the
        # measurement peer) must equal download · (1 − external_fraction)
        # exactly: since downloaded = inflow + download · external_fraction,
        # the external remainder determines the sampled download and pins
        # the inflow.  Self-exclusion used to *discard* the excluded
        # partner's Dirichlet share instead of renormalizing, silently
        # deflating uploaders' inflow below the ground truth.
        f = network.params.external_fraction
        m = network.measurement_id
        inflow = {pid: 0.0 for pid in network.peer_ids}
        inflow_not_m = {pid: 0.0 for pid in network.peer_ids}
        for (src, dst), w in network.edges.items():
            if dst == m:
                continue
            inflow[dst] += w
            if src != m:
                inflow_not_m[dst] += w
        checked = 0
        for pid in network.peer_ids:
            external = network.downloaded[pid] - inflow[pid]
            if external <= 0:
                continue  # fresh install (no download sampled)
            sampled_download = external / f
            assert inflow_not_m[pid] == pytest.approx(
                sampled_download * (1.0 - f), rel=1e-9
            )
            checked += 1
        assert checked > 100

    def test_param_validation(self):
        with pytest.raises(ValueError):
            DeploymentParams(num_peers=5).validate()
        with pytest.raises(ValueError):
            DeploymentParams(fresh_fraction=1.2).validate()
        with pytest.raises(ValueError):
            DeploymentParams(fresh_fraction=0.8, altruist_fraction=0.3).validate()
        with pytest.raises(ValueError):
            DeploymentParams(measurement_partner_fraction=0.0).validate()


class TestCrawl:
    def test_sees_most_of_population(self, network, crawl_result):
        assert len(crawl_result.seen_peers) > 0.8 * len(network.peer_ids)

    def test_messages_logged(self, crawl_result):
        assert crawl_result.messages_logged > 0

    def test_reputations_in_range(self, crawl_result):
        for rep in crawl_result.reputation.values():
            assert -1.0 < rep < 1.0

    def test_fraction_split_sums_to_one(self, crawl_result):
        f = crawl_result.reputation_cdf_fractions()
        assert f["negative"] + f["zero"] + f["positive"] == pytest.approx(1.0)

    def test_paper_shape_negative_majority_of_nonzero(self, crawl_result):
        f = crawl_result.reputation_cdf_fractions()
        assert f["negative"] > f["positive"]
        assert f["zero"] > 0.2

    def test_fresh_peers_reputation_zero(self, network, crawl_result):
        fresh = [p for p, c in network.classes.items() if c == "fresh"]
        seen_fresh = [p for p in fresh if p in crawl_result.reputation]
        assert seen_fresh
        for pid in seen_fresh:
            assert crawl_result.reputation[pid] == 0.0

    def test_crawl_param_validation(self, network):
        with pytest.raises(ValueError):
            MeasurementCrawl(network, duration_days=0.0)
        with pytest.raises(ValueError):
            MeasurementCrawl(network, contacts_mean=-1.0)

    def test_crawl_deterministic(self, network):
        r1 = MeasurementCrawl(network, seed=2).run()
        r2 = MeasurementCrawl(network, seed=2).run()
        assert r1.reputation == r2.reputation
