"""Unit tests for seeded RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry, RngStream


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(99).stream("gossip")
        b = RngRegistry(99).stream("gossip")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_order_of_creation_does_not_matter(self):
        r1 = RngRegistry(5)
        r1.stream("x")
        y1 = [r1.stream("y").random() for _ in range(3)]
        r2 = RngRegistry(5)
        y2 = [r2.stream("y").random() for _ in range(3)]  # y first this time
        assert y1 == y2

    def test_different_names_differ(self):
        reg = RngRegistry(1)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("s")
        b = RngRegistry(2).stream("s")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_spawn_indexes_streams(self):
        reg = RngRegistry(1)
        assert reg.spawn("peer", 1) is reg.stream("peer#1")
        assert reg.spawn("peer", 1) is not reg.spawn("peer", 2)


class TestRngStream:
    @pytest.fixture
    def stream(self):
        return RngRegistry(42).stream("test")

    def test_random_in_unit_interval(self, stream):
        for _ in range(100):
            assert 0.0 <= stream.random() < 1.0

    def test_uniform_bounds(self, stream):
        for _ in range(100):
            v = stream.uniform(2.0, 5.0)
            assert 2.0 <= v < 5.0

    def test_randint_bounds(self, stream):
        vals = {stream.randint(0, 5) for _ in range(200)}
        assert vals == {0, 1, 2, 3, 4}

    def test_bernoulli_extremes(self, stream):
        assert all(stream.bernoulli(1.0) for _ in range(20))
        assert not any(stream.bernoulli(0.0) for _ in range(20))

    def test_choice_single_element(self, stream):
        assert stream.choice(["only"]) == "only"

    def test_choice_empty_raises(self, stream):
        with pytest.raises(ValueError):
            stream.choice([])

    def test_choice_covers_all_elements(self, stream):
        seen = {stream.choice("abc") for _ in range(200)}
        assert seen == {"a", "b", "c"}

    def test_sample_without_replacement(self, stream):
        out = stream.sample(list(range(10)), 5)
        assert len(out) == 5
        assert len(set(out)) == 5

    def test_sample_clamps_k(self, stream):
        out = stream.sample([1, 2, 3], 10)
        assert sorted(out) == [1, 2, 3]

    def test_sample_zero(self, stream):
        assert stream.sample([1, 2, 3], 0) == []

    def test_shuffled_preserves_elements(self, stream):
        original = list(range(20))
        out = stream.shuffled(original)
        assert sorted(out) == original
        assert original == list(range(20))  # input untouched

    def test_exponential_positive(self, stream):
        assert all(stream.exponential(10.0) > 0 for _ in range(50))

    def test_exponential_mean_roughly_right(self, stream):
        vals = [stream.exponential(10.0) for _ in range(3000)]
        assert 9.0 < np.mean(vals) < 11.0

    def test_lognormal_positive(self, stream):
        assert all(stream.lognormal(0.0, 1.0) > 0 for _ in range(50))

    def test_pareto_at_least_scale(self, stream):
        assert all(stream.pareto(2.0, scale=3.0) >= 3.0 for _ in range(100))

    def test_generator_exposed(self, stream):
        assert isinstance(stream.generator, np.random.Generator)
