"""Unit tests for the peer-sampling services."""

import pytest

from repro.pss.buddycast import BuddyCastPSS, OraclePSS
from repro.sim.rng import RngRegistry


def make_pss(online, view_size=10, seed=3, kind="buddycast"):
    rng = RngRegistry(seed).stream("pss")
    if kind == "oracle":
        return OraclePSS(is_online=lambda p: p in online, rng=rng)
    return BuddyCastPSS(is_online=lambda p: p in online, rng=rng, view_size=view_size)


class TestBuddyCast:
    def test_register_bootstraps_views(self):
        online = set(range(10))
        pss = make_pss(online)
        for p in range(10):
            pss.register(p)
        # Later peers got bootstrap contacts.
        assert len(pss.view_of(9)) >= 1

    def test_register_idempotent(self):
        pss = make_pss({0, 1})
        pss.register(0)
        view = pss.view_of(0)
        pss.register(0)
        assert pss.view_of(0) == view

    def test_sample_returns_online_contact(self):
        online = set(range(5))
        pss = make_pss(online)
        for p in range(5):
            pss.register(p)
        for p in range(5):
            s = pss.sample(p)
            if s is not None:
                assert s in online and s != p

    def test_sample_never_returns_offline(self):
        online = {0, 1}
        pss = make_pss(online)
        for p in range(5):
            pss.register(p)
        for _ in range(50):
            s = pss.sample(0)
            assert s in (None, 1)

    def test_sample_unknown_peer_none(self):
        pss = make_pss(set())
        assert pss.sample(99) is None

    def test_tick_spreads_views(self):
        online = set(range(20))
        pss = make_pss(online, view_size=20)
        for p in range(20):
            pss.register(p)
        for t in range(20):
            for p in range(20):
                pss.tick(p, float(t))
        # After many exchanges every view should be well populated.
        sizes = [len(pss.view_of(p)) for p in range(20)]
        assert min(sizes) >= 5
        assert pss.exchanges > 0

    def test_view_bounded(self):
        online = set(range(50))
        pss = make_pss(online, view_size=8)
        for p in range(50):
            pss.register(p)
        for t in range(10):
            for p in range(50):
                pss.tick(p, float(t))
        assert all(len(pss.view_of(p)) <= 8 for p in range(50))

    def test_offline_peer_does_not_tick(self):
        online = {1, 2}
        pss = make_pss(online)
        for p in range(3):
            pss.register(p)
        before = pss.exchanges
        pss.tick(0, 1.0)  # 0 is offline
        assert pss.exchanges == before

    def test_invalid_view_size(self):
        with pytest.raises(ValueError):
            make_pss(set(), view_size=0)

    def test_eviction_prefers_stale_entries(self):
        online = set(range(5))
        pss = make_pss(online, view_size=2)
        pss.register(0)
        pss._insert(0, "fresh", freshness=100.0)
        pss._insert(0, "stale", freshness=1.0)
        pss._insert(0, "newer", freshness=50.0)
        view = pss.view_of(0)
        assert "fresh" in view
        assert "stale" not in view

    def test_eviction_never_discards_the_inserted_contact(self):
        # A contact staler than every resident entry must still land in
        # the view (at the expense of the stalest resident) — evicting
        # the newcomer itself would silently freeze view membership.
        pss = make_pss(set(range(5)), view_size=2)
        pss.register(0)
        pss._insert(0, "a", freshness=100.0)
        pss._insert(0, "b", freshness=50.0)
        pss._insert(0, "old-news", freshness=1.0)
        view = pss.view_of(0)
        assert "old-news" in view
        assert "b" not in view
        assert len(view) == 2


class TestChurnRejoin:
    def test_forget_drops_own_view_only(self):
        online = set(range(6))
        pss = make_pss(online)
        for p in range(6):
            pss.register(p)
        known_by_others = any(1 in pss.view_of(p) for p in range(6) if p != 1)
        pss.forget(1)
        assert pss.view_of(1) == []
        # Others still know the crashed peer.
        assert known_by_others == any(
            1 in pss.view_of(p) for p in range(6) if p != 1
        )

    def test_rejoin_bootstraps_at_current_time(self):
        online = set(range(8))
        pss = make_pss(online)
        for p in range(8):
            pss.register(p)
        for t in range(5):
            for p in range(8):
                pss.tick(p, float(t))
        pss.forget(3)
        pss.register(3, now=1000.0)
        view = pss._views[3]
        assert len(view) >= 1
        # Every bootstrap contact carries the rejoin time, so peer 3's
        # new entries (and 3 in its contacts' views) are the freshest,
        # not the first eviction candidates.
        assert all(fresh == 1000.0 for fresh in view.values())
        assert 3 not in view  # never bootstraps itself
        for contact in view:
            assert pss._views[contact][3] == 1000.0

    def test_rejoin_can_gossip_again(self):
        online = set(range(8))
        pss = make_pss(online)
        for p in range(8):
            pss.register(p)
        pss.forget(3)
        assert pss.sample(3) is None
        pss.register(3, now=50.0)
        before = pss.exchanges
        for t in range(5):
            pss.tick(3, 50.0 + t)
        assert pss.exchanges > before


class TestOracle:
    def test_samples_any_online_peer(self):
        online = set(range(10))
        pss = make_pss(online, kind="oracle")
        for p in range(10):
            pss.register(p)
        seen = {pss.sample(0) for _ in range(200)}
        assert seen == set(range(1, 10))

    def test_none_when_alone(self):
        pss = make_pss({0}, kind="oracle")
        pss.register(0)
        assert pss.sample(0) is None

    def test_view_of_excludes_self(self):
        pss = make_pss({0, 1, 2}, kind="oracle")
        for p in range(3):
            pss.register(p)
        assert set(pss.view_of(1)) == {0, 2}

    def test_tick_is_noop(self):
        pss = make_pss({0}, kind="oracle")
        pss.register(0)
        pss.tick(0, 1.0)  # must not raise
