"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.transfer_graph import TransferGraph
from repro.sim.rng import RngRegistry
from repro.traces.models import DAY
from repro.traces.synthetic import SyntheticTraceGenerator, TraceParams

MB = 1024.0**2


@pytest.fixture
def rng():
    """A deterministic RNG stream."""
    return RngRegistry(1234).stream("test")


@pytest.fixture
def diamond_graph():
    """A 4-node diamond: s -> {a, b} -> t plus a weak direct edge s -> t.

    Exact maxflow s->t = min(3,2) via a? No: edges s->a=3, a->t=2,
    s->b=1, b->t=4, s->t=0.5 giving maxflow = 2 + 1 + 0.5 = 3.5.
    """
    g = TransferGraph()
    g.add_transfer("s", "a", 3.0)
    g.add_transfer("a", "t", 2.0)
    g.add_transfer("s", "b", 1.0)
    g.add_transfer("b", "t", 4.0)
    g.add_transfer("s", "t", 0.5)
    return g


@pytest.fixture
def tiny_trace():
    """A very small but structurally complete community trace."""
    params = TraceParams(
        num_peers=8,
        num_swarms=2,
        duration=0.5 * DAY,
        min_file_size=20 * MB,
        max_file_size=60 * MB,
        target_pieces=32,
        swarms_per_peer_mean=1.5,
    )
    return SyntheticTraceGenerator(params, seed=99).generate()
