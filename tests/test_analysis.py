"""Unit tests for the analysis helpers."""

import math

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_chart, render_table
from repro.analysis.stats import cdf, pearson_r, spearman_r, summarize
from repro.analysis.timeseries import bin_series, daily_means


class TestCdf:
    def test_basic(self):
        values, frac = cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert list(frac) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        values, frac = cdf([])
        assert values.size == 0 and frac.size == 0

    def test_duplicates(self):
        values, frac = cdf([1.0, 1.0])
        assert list(frac) == [0.5, 1.0]


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson_r([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert spearman_r([1, 2, 3], [5, 4, 3]) == pytest.approx(-1.0)

    def test_monotone_nonlinear_spearman_one(self):
        x = np.linspace(-5, 5, 20)
        y = np.arctan(x)
        assert spearman_r(x, y) == pytest.approx(1.0)
        assert pearson_r(x, y) < 1.0

    def test_degenerate_nan(self):
        assert math.isnan(pearson_r([1.0], [2.0]))
        assert math.isnan(pearson_r([1, 1, 1], [1, 2, 3]))
        assert math.isnan(spearman_r([1, 1, 1], [1, 2, 3]))


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_drops_nans(self):
        s = summarize([1.0, float("nan"), 3.0])
        assert s.n == 2
        assert s.mean == 2.0

    def test_empty(self):
        s = summarize([])
        assert s.n == 0
        assert math.isnan(s.mean)


class TestBinSeries:
    def test_averages_within_bins(self):
        times = [0.0, 1.0, 10.0, 11.0]
        values = [1.0, 3.0, 10.0, 20.0]
        mids, means = bin_series(times, values, bin_width=10.0)
        assert means[0] == pytest.approx(2.0)
        assert means[1] == pytest.approx(15.0)
        assert mids[0] == 5.0

    def test_empty_bins_nan(self):
        mids, means = bin_series([0.0, 25.0], [1.0, 2.0], 10.0)
        assert np.isnan(means[1])

    def test_nan_values_skipped(self):
        _, means = bin_series([0.0, 1.0], [float("nan"), 4.0], 10.0)
        assert means[0] == 4.0

    def test_t_max_extends_axis(self):
        mids, means = bin_series([0.0], [1.0], 10.0, t_max=50.0)
        assert len(mids) == 5

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bin_series([0.0], [1.0], 0.0)

    def test_empty_input(self):
        mids, means = bin_series([], [], 10.0)
        assert mids.size == 0

    def test_daily_means_day_axis(self):
        days, means = daily_means([0.0, 86400.0 * 1.5], [1.0, 2.0])
        assert days[0] == 0.5
        assert days[1] == 1.5


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["a", "bb"], [[1.0, "x"], [2.5, "yy"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.000" in out and "yy" in out

    def test_nan_prints_dash(self):
        out = render_table(["v"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_custom_float_format(self):
        out = render_table(["v"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out and "1.234" not in out


class TestAsciiChart:
    def test_renders_series_markers(self):
        out = ascii_chart({"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]})
        assert "*" in out and "o" in out
        assert "up" in out and "down" in out

    def test_empty_series(self):
        assert ascii_chart({"x": [float("nan")]}) == "(no data)"

    def test_constant_series_no_crash(self):
        out = ascii_chart({"flat": [5.0, 5.0, 5.0]})
        assert "flat" in out

    def test_y_label(self):
        out = ascii_chart({"s": [1, 2]}, y_label="speed")
        assert out.splitlines()[0] == "speed"
