"""Smoke tests: the fast examples must run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py", [])
    out = capsys.readouterr().out
    assert "Direct experience" in out
    assert "Maxflow bound" in out


def test_trace_tooling_runs(capsys, tmp_path):
    run_example("trace_tooling.py", ["--seed", "3", "--out", str(tmp_path / "t.json")])
    out = capsys.readouterr().out
    assert "trace archived" in out
    assert (tmp_path / "t.json").exists()


def test_deployment_crawl_runs(capsys):
    run_example("deployment_crawl.py", ["--peers", "400", "--seed", "2"])
    out = capsys.readouterr().out
    assert "Figure 4(b)" in out
