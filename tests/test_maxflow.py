"""Unit and property tests for the maxflow kernels."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.maxflow import (
    bounded_ford_fulkerson,
    ford_fulkerson,
    maxflow_two_hop,
)
from repro.graph.transfer_graph import TransferGraph


def nx_maxflow(graph: TransferGraph, s, t) -> float:
    g = graph.to_networkx()
    if s not in g or t not in g:
        return 0.0
    value, _ = nx.maximum_flow(g, s, t, capacity="capacity")
    return float(value)


class TestFordFulkerson:
    def test_direct_edge(self):
        g = TransferGraph.from_edges([("s", "t", 7.0)])
        assert ford_fulkerson(g, "s", "t").value == 7.0

    def test_no_path(self):
        g = TransferGraph.from_edges([("t", "s", 7.0)])
        assert ford_fulkerson(g, "s", "t").value == 0.0

    def test_chain_bottleneck(self):
        g = TransferGraph.from_edges([("s", "a", 10.0), ("a", "b", 3.0), ("b", "t", 10.0)])
        assert ford_fulkerson(g, "s", "t").value == 3.0

    def test_diamond(self, diamond_graph):
        assert ford_fulkerson(diamond_graph, "s", "t").value == pytest.approx(3.5)

    def test_missing_nodes_zero(self):
        g = TransferGraph()
        g.add_node("s")
        assert ford_fulkerson(g, "s", "t").value == 0.0
        assert ford_fulkerson(g, "x", "s").value == 0.0

    def test_same_source_sink_raises(self):
        g = TransferGraph()
        g.add_node("s")
        with pytest.raises(ValueError):
            ford_fulkerson(g, "s", "s")

    def test_requires_residual_reversal(self):
        # Classic case where greedy DFS must undo flow via reverse edges:
        # s->a=1, s->b=1, a->b=1, a->t=1, b->t=1. Maxflow = 2 but a greedy
        # path s->a->b->t blocks both unless reversal works.
        g = TransferGraph.from_edges(
            [("s", "a", 1.0), ("s", "b", 1.0), ("a", "b", 1.0), ("a", "t", 1.0), ("b", "t", 1.0)]
        )
        assert ford_fulkerson(g, "s", "t").value == 2.0

    def test_flow_assignment_respects_capacities(self, diamond_graph):
        result = ford_fulkerson(diamond_graph, "s", "t")
        for (i, j), f in result.flows.items():
            assert f <= diamond_graph.capacity(i, j) + 1e-9
            assert f >= 0

    def test_flow_conservation(self, diamond_graph):
        result = ford_fulkerson(diamond_graph, "s", "t")
        balance = {}
        for (i, j), f in result.flows.items():
            balance[i] = balance.get(i, 0.0) - f
            balance[j] = balance.get(j, 0.0) + f
        for node, net in balance.items():
            if node == "s":
                assert net == pytest.approx(-result.value)
            elif node == "t":
                assert net == pytest.approx(result.value)
            else:
                assert net == pytest.approx(0.0)

    def test_matches_networkx_on_fixed_graph(self, diamond_graph):
        assert ford_fulkerson(diamond_graph, "s", "t").value == pytest.approx(
            nx_maxflow(diamond_graph, "s", "t")
        )

    def test_cycle_does_not_loop(self):
        g = TransferGraph.from_edges(
            [("s", "a", 2.0), ("a", "b", 2.0), ("b", "a", 2.0), ("b", "t", 2.0)]
        )
        assert ford_fulkerson(g, "s", "t").value == 2.0


class TestBoundedFordFulkerson:
    def test_hop_limit_one_only_direct_edge(self, diamond_graph):
        assert bounded_ford_fulkerson(diamond_graph, "s", "t", max_hops=1).value == 0.5

    def test_hop_limit_two_includes_intermediaries(self, diamond_graph):
        assert bounded_ford_fulkerson(diamond_graph, "s", "t", max_hops=2).value == pytest.approx(3.5)

    def test_three_hop_path_excluded_at_two(self):
        g = TransferGraph.from_edges([("s", "a", 5.0), ("a", "b", 5.0), ("b", "t", 5.0)])
        assert bounded_ford_fulkerson(g, "s", "t", max_hops=2).value == 0.0
        assert bounded_ford_fulkerson(g, "s", "t", max_hops=3).value == 5.0

    def test_invalid_hop_limit(self, diamond_graph):
        with pytest.raises(ValueError):
            bounded_ford_fulkerson(diamond_graph, "s", "t", max_hops=0)

    def test_large_bound_equals_exact(self, diamond_graph):
        exact = ford_fulkerson(diamond_graph, "s", "t").value
        assert bounded_ford_fulkerson(diamond_graph, "s", "t", max_hops=10).value == pytest.approx(exact)


class TestTwoHopClosedForm:
    def test_direct_plus_intermediaries(self, diamond_graph):
        assert maxflow_two_hop(diamond_graph, "s", "t").value == pytest.approx(3.5)

    def test_empty_graph(self):
        g = TransferGraph()
        assert maxflow_two_hop(g, "s", "t").value == 0.0

    def test_same_endpoints_raise(self):
        g = TransferGraph()
        with pytest.raises(ValueError):
            maxflow_two_hop(g, "s", "s")

    def test_min_rule_per_intermediary(self):
        g = TransferGraph.from_edges([("s", "v", 10.0), ("v", "t", 4.0)])
        assert maxflow_two_hop(g, "s", "t").value == 4.0

    def test_ignores_longer_paths(self):
        g = TransferGraph.from_edges([("s", "a", 5.0), ("a", "b", 5.0), ("b", "t", 5.0)])
        assert maxflow_two_hop(g, "s", "t").value == 0.0

    def test_scan_direction_symmetry(self):
        # Exercise both the out_s-smaller and in_t-smaller scan branches.
        g = TransferGraph()
        for i in range(5):
            g.add_transfer("s", f"v{i}", 1.0)
            g.add_transfer(f"v{i}", "t", 2.0)
        g.add_transfer("u0", "t", 9.0)  # in_t larger than out_s
        assert maxflow_two_hop(g, "s", "t").value == 5.0
        h = TransferGraph()
        for i in range(5):
            h.add_transfer("s", f"v{i}", 1.0)
        h.add_transfer("v0", "t", 2.0)  # out_s larger than in_t
        assert maxflow_two_hop(h, "s", "t").value == 1.0


# ---------------------------------------------------------------------------
# Property-based equivalences
# ---------------------------------------------------------------------------

@st.composite
def random_graphs(draw):
    """Small random weighted digraphs over integer nodes."""
    n = draw(st.integers(min_value=2, max_value=8))
    possible = [(i, j) for i in range(n) for j in range(n) if i != j]
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from(possible),
                st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            ),
            max_size=20,
        )
    )
    g = TransferGraph()
    for node in range(n):
        g.add_node(node)
    for (i, j), w in edges:
        g.add_transfer(i, j, w)
    return g


@settings(max_examples=120, deadline=None)
@given(random_graphs())
def test_two_hop_closed_form_equals_bounded_ff(g):
    v1 = maxflow_two_hop(g, 0, 1).value
    v2 = bounded_ford_fulkerson(g, 0, 1, max_hops=2).value
    assert v1 == pytest.approx(v2, rel=1e-9, abs=1e-9)


@settings(max_examples=120, deadline=None)
@given(random_graphs())
def test_ford_fulkerson_matches_networkx(g):
    ours = ford_fulkerson(g, 0, 1).value
    theirs = nx_maxflow(g, 0, 1)
    assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(random_graphs())
def test_bounded_flow_monotone_in_hops_up_to_two(g):
    # The bounded kernel is exact for K<=2, so K=1 <= K=2 <= exact.
    v1 = bounded_ford_fulkerson(g, 0, 1, max_hops=1).value
    v2 = bounded_ford_fulkerson(g, 0, 1, max_hops=2).value
    vx = ford_fulkerson(g, 0, 1).value
    assert v1 <= v2 + 1e-9
    assert v2 <= vx + 1e-9


@settings(max_examples=100, deadline=None)
@given(random_graphs())
def test_two_hop_bounded_by_incident_capacity(g):
    # The paper's security property: flow toward the sink is bounded by the
    # sink's total incoming capacity, and flow out of the source by its
    # outgoing capacity.
    v = maxflow_two_hop(g, 0, 1).value
    in_cap = sum(g.predecessors(1).values())
    out_cap = sum(g.successors(0).values())
    assert v <= in_cap + 1e-9
    assert v <= out_cap + 1e-9
