"""Unit tests for bandwidth allocation and the transfer path.

These exercise ``CommunitySimulator._allocate_bandwidth`` and
``_transfer`` directly on a hand-built two-swarm trace, checking the
capacity model: equal uplink split across links, receiver downlink caps,
piece-boundary accounting, and carry-over of partial pieces.
"""

import numpy as np
import pytest

from repro.bittorrent.config import BitTorrentConfig
from repro.bittorrent.roles import Role, RoleAssignment
from repro.bittorrent.simulator import CommunitySimulator
from repro.traces.models import (
    CommunityTrace,
    FileRequest,
    PeerProfile,
    PeerSession,
    SwarmSpec,
)

UP = 1000.0  # bytes/s
DOWN = 2500.0


def build_sim(num_peers=4, piece_size=100.0, file_size=1000.0, downlink=DOWN):
    peers = {
        pid: PeerProfile(
            peer_id=pid,
            uplink_bps=UP,
            downlink_bps=downlink,
            connectable=True,
            sessions=[PeerSession(0.0, 10_000.0)],
        )
        for pid in range(num_peers)
    }
    swarms = {
        0: SwarmSpec(0, file_size=file_size, piece_size=piece_size, origin_seeder=0),
    }
    trace = CommunityTrace(duration=10_000.0, peers=peers, swarms=swarms, requests=[])
    trace.validate()
    roles = RoleAssignment(
        roles={0: Role.ORIGIN, **{pid: Role.SHARER for pid in range(1, num_peers)}}
    )
    config = BitTorrentConfig(round_interval=10.0, optimistic_interval=30.0)
    sim = CommunitySimulator(trace, roles, config=config, seed=1)
    sim.engine.run_until(0.0)  # fire the t=0 events (origin join, sessions)
    sim.online.update(range(num_peers))
    return sim


class TestAllocateBandwidth:
    def test_equal_split_across_links(self):
        sim = build_sim()
        swarm = sim.swarms[0]
        for pid in (1, 2):
            sim._join(0, pid)
        links = [(0, 1, swarm), (0, 2, swarm)]
        allocated = sim._allocate_bandwidth(links, dt=10.0)
        amounts = [b for *_, b in allocated]
        assert amounts == [UP * 10.0 / 2] * 2

    def test_uplink_split_spans_swarms_globally(self):
        sim = build_sim()
        swarm = sim.swarms[0]
        for pid in (1, 2, 3):
            sim._join(0, pid)
        links = [(0, 1, swarm), (0, 2, swarm), (0, 3, swarm)]
        allocated = sim._allocate_bandwidth(links, dt=10.0)
        total = sum(b for *_, b in allocated)
        assert total == pytest.approx(UP * 10.0)

    def test_downlink_cap_scales_proportionally(self):
        # Three uploaders feed one receiver whose downlink is the binding cap.
        sim = build_sim(downlink=150.0)  # 150 B/s << 3 x 1000 B/s
        swarm = sim.swarms[0]
        sim._join(0, 3)
        links = [(0, 3, swarm), (1, 3, swarm), (2, 3, swarm)]
        allocated = sim._allocate_bandwidth(links, dt=10.0)
        total_in = sum(b for *_, b in allocated)
        assert total_in == pytest.approx(150.0 * 10.0)
        # Proportional: all uploaders offered the same, so all scaled equally.
        amounts = [b for *_, b in allocated]
        assert max(amounts) == pytest.approx(min(amounts))

    def test_empty_links(self):
        sim = build_sim()
        assert sim._allocate_bandwidth([], dt=10.0) == []


class TestTransfer:
    def test_whole_pieces_granted(self):
        sim = build_sim(piece_size=100.0, file_size=1000.0)
        swarm = sim.swarms[0]
        member = swarm.join(1, now=0.0)
        moved = sim._transfer(swarm, 0, 1, budget=250.0, now=0.0)
        assert moved == 250.0
        assert member.bitfield.num_have == 2  # two whole pieces
        assert member.carry[0] == pytest.approx(50.0)

    def test_carry_completes_next_piece(self):
        sim = build_sim(piece_size=100.0, file_size=1000.0)
        swarm = sim.swarms[0]
        member = swarm.join(1, now=0.0)
        sim._transfer(swarm, 0, 1, budget=250.0, now=0.0)
        sim._transfer(swarm, 0, 1, budget=60.0, now=10.0)
        # 50 carry + 60 = 110 -> one more piece + 10 carry.
        assert member.bitfield.num_have == 3
        assert member.carry[0] == pytest.approx(10.0)

    def test_transfer_capped_by_remaining_pieces(self):
        sim = build_sim(piece_size=100.0, file_size=300.0)
        swarm = sim.swarms[0]
        member = swarm.join(1, now=0.0)
        moved = sim._transfer(swarm, 0, 1, budget=1e9, now=0.0)
        assert moved == pytest.approx(300.0)
        assert member.bitfield.is_complete

    def test_transfer_to_complete_member_is_zero(self):
        sim = build_sim()
        swarm = sim.swarms[0]
        swarm.join(1, now=0.0, complete=True)
        assert sim._transfer(swarm, 0, 1, budget=500.0, now=0.0) == 0.0

    def test_transfer_between_nonmembers_is_zero(self):
        sim = build_sim()
        swarm = sim.swarms[0]
        assert sim._transfer(swarm, 0, 99, budget=500.0, now=0.0) == 0.0

    def test_zero_budget(self):
        sim = build_sim()
        swarm = sim.swarms[0]
        swarm.join(1, now=0.0)
        assert sim._transfer(swarm, 0, 1, budget=0.0, now=0.0) == 0.0

    def test_leecher_uploader_limited_to_its_pieces(self):
        sim = build_sim(piece_size=100.0, file_size=1000.0)
        swarm = sim.swarms[0]
        up = swarm.join(1, now=0.0)
        down = swarm.join(2, now=0.0)
        swarm.grant_pieces(up, np.array([0, 1]), now=0.0)
        moved = sim._transfer(swarm, 1, 2, budget=1e9, now=0.0)
        assert moved == pytest.approx(200.0)
        assert down.bitfield.num_have == 2
        assert down.bitfield.have[0] and down.bitfield.have[1]

    def test_accounting_reaches_bartercast_and_stats(self):
        sim = build_sim(piece_size=100.0, file_size=1000.0)
        swarm = sim.swarms[0]
        swarm.join(1, now=0.0)
        sim._transfer(swarm, 0, 1, budget=250.0, now=0.0)
        assert sim.nodes[0].history.get(1).uploaded == pytest.approx(250.0)
        assert sim.nodes[1].history.get(0).downloaded == pytest.approx(250.0)
        assert sim.stats.total_downloaded(1) == pytest.approx(250.0)

    def test_rarest_first_across_connections(self):
        # Receiver fetching from a leecher must prefer the rarer pieces.
        sim = build_sim(num_peers=5, piece_size=100.0, file_size=500.0)
        swarm = sim.swarms[0]
        up = swarm.join(1, now=0.0)
        down = swarm.join(2, now=0.0)
        filler = swarm.join(3, now=0.0)
        swarm.grant_pieces(up, np.array([0, 1, 2]), now=0.0)
        # Piece 0 is common (filler also has it); pieces 1, 2 are rarer.
        swarm.grant_pieces(filler, np.array([0]), now=0.0)
        sim._transfer(swarm, 1, 2, budget=200.0, now=0.0)
        assert down.bitfield.have[1] and down.bitfield.have[2]
        assert not down.bitfield.have[0]
