"""Integration tests for the community simulator.

These run small end-to-end scenarios and assert the emergent properties
the paper relies on: files actually disseminate, transfer accounting is
conserved, reputations diverge by role, bans actually bite, and runs are
reproducible from their seed.
"""

import numpy as np
import pytest

from repro.bittorrent.config import BitTorrentConfig
from repro.bittorrent.roles import Role, RoleAssignment
from repro.bittorrent.simulator import CommunitySimulator
from repro.core.policies import BanPolicy, NoPolicy
from repro.traces.models import DAY
from repro.traces.synthetic import SyntheticTraceGenerator, TraceParams

MB = 1024.0**2


def small_setup(seed=21, policy=None, duration=0.6 * DAY, freerider_fraction=0.5,
                disobey_fraction=0.0, disobey_kind=None):
    params = TraceParams(
        num_peers=14,
        num_swarms=2,
        duration=duration,
        min_file_size=20 * MB,
        max_file_size=60 * MB,
        target_pieces=48,
        swarms_per_peer_mean=1.6,
        prime_time_hour=2.0,
        day_active_prob=1.0,
        mean_session_hours=8.0,
    )
    trace = SyntheticTraceGenerator(params, seed=seed).generate()
    roles = RoleAssignment.split(
        trace, freerider_fraction=freerider_fraction, seed=seed,
        disobey_fraction=disobey_fraction, disobey_kind=disobey_kind,
    )
    config = BitTorrentConfig(
        round_interval=30.0, optimistic_interval=60.0,
        gossip_interval=60.0, sample_interval=3600.0,
    )
    sim = CommunitySimulator(trace, roles, policy=policy, config=config, seed=seed)
    return sim


class TestDissemination:
    def test_data_actually_moves(self):
        sim = small_setup()
        stats = sim.run()
        assert stats.downloaded.sum() > 10 * MB

    def test_some_downloads_complete(self):
        sim = small_setup()
        sim.run()
        assert sum(s.completions for s in sim.swarms.values()) > 0

    def test_conservation_upload_equals_download(self):
        sim = small_setup()
        stats = sim.run()
        assert stats.uploaded.sum() == pytest.approx(stats.downloaded.sum())

    def test_bartercast_histories_match_stats(self):
        sim = small_setup()
        stats = sim.run()
        for pid, node in sim.nodes.items():
            assert node.history.total_uploaded == pytest.approx(stats.total_uploaded(pid))
            assert node.history.total_downloaded == pytest.approx(stats.total_downloaded(pid))

    def test_completed_freeriders_leave_swarms(self):
        sim = small_setup()
        sim.run()
        for swarm in sim.swarms.values():
            for member in swarm.members.values():
                if member.is_seeder:
                    assert sim.roles.role_of(member.peer_id) != Role.FREERIDER

    def test_origin_seeders_stay(self):
        sim = small_setup()
        sim.run()
        for sid, swarm in sim.swarms.items():
            origin = sim.trace.swarms[sid].origin_seeder
            assert swarm.is_member(origin)
            assert swarm.members[origin].is_seeder

    def test_availability_consistent_with_bitfields(self):
        sim = small_setup()
        sim.run()
        for swarm in sim.swarms.values():
            expected = np.zeros(swarm.num_pieces, dtype=np.int32)
            for member in swarm.members.values():
                expected += member.bitfield.have.astype(np.int32)
            assert (swarm.availability == expected).all()


class TestGossip:
    def test_messages_flow(self):
        sim = small_setup()
        sim.run()
        sent = sum(n.messages_sent for n in sim.nodes.values())
        received = sum(n.messages_received for n in sim.nodes.values())
        assert sent > 0
        assert received == sent

    def test_nodes_learn_about_third_parties(self):
        sim = small_setup()
        sim.run()
        # At least some node must know more peers than it transferred with.
        learned = [
            n.known_peers - 1 - len(n.history)
            for n in sim.nodes.values()
        ]
        assert max(learned) > 0


class TestReputationDynamics:
    def test_freeriders_rank_below_sharers(self):
        sim = small_setup(duration=1.0 * DAY)
        sim.run()
        snap = sim.system_reputation_snapshot()
        sharer_mean = np.mean([snap[p] for p in sim.roles.sharers])
        freerider_mean = np.mean([snap[p] for p in sim.roles.freeriders])
        assert sharer_mean > freerider_mean

    def test_ban_policy_reduces_freerider_share(self):
        sim_none = small_setup(duration=1.0 * DAY, policy=NoPolicy())
        stats_none = sim_none.run()
        sim_ban = small_setup(duration=1.0 * DAY, policy=BanPolicy(-0.3))
        stats_ban = sim_ban.run()
        fr = sim_ban.roles.freeriders
        down_none = sum(stats_none.total_downloaded(p) for p in fr)
        down_ban = sum(stats_ban.total_downloaded(p) for p in fr)
        assert down_ban <= down_none

    def test_snapshot_excludes_origin_seeders(self):
        sim = small_setup()
        sim.run()
        snap = sim.system_reputation_snapshot()
        origin_ids = {s.origin_seeder for s in sim.trace.swarms.values()}
        assert not set(snap) & origin_ids


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        s1 = small_setup(seed=33).run()
        s2 = small_setup(seed=33).run()
        assert np.array_equal(s1.downloaded, s2.downloaded)
        assert np.array_equal(s1.uploaded, s2.uploaded)

    def test_different_seed_different_outcome(self):
        s1 = small_setup(seed=33).run()
        s2 = small_setup(seed=34).run()
        assert not np.array_equal(s1.downloaded, s2.downloaded)


class TestHooks:
    def test_samplers_fire(self):
        sim = small_setup()
        calls = []
        sim.add_sampler(lambda now: calls.append(now))
        sim.run()
        assert len(calls) >= 5
        assert calls == sorted(calls)

    def test_run_until_partial(self):
        sim = small_setup()
        sim.run(until=3600.0)
        assert sim.engine.now == 3600.0

    def test_unknown_pss_kind_rejected(self, tiny_trace):
        roles = RoleAssignment.split(tiny_trace, seed=1)
        with pytest.raises(ValueError):
            CommunitySimulator(tiny_trace, roles, pss="magic")


class TestAdversaries:
    def test_ignorers_send_nothing(self):
        sim = small_setup(disobey_fraction=0.5, disobey_kind="ignore")
        sim.run()
        for pid in sim.roles.behaviors:
            assert sim.nodes[pid].messages_sent == 0

    def test_liars_get_no_boost_beyond_bound(self):
        sim = small_setup(duration=1.0 * DAY, disobey_fraction=0.5, disobey_kind="lie")
        sim.run()
        metric = sim.bc_config.metric
        for evaluator in sim.roles.sharers:
            node = sim.nodes[evaluator]
            in_cap = sum(node.graph.predecessors(evaluator).values())
            bound = metric.scale(in_cap)
            for liar in sim.roles.behaviors:
                if liar != evaluator:
                    assert node.reputation_of(liar) <= bound + 1e-9


class TestFailureInjection:
    def test_gossip_loss_drops_messages(self):
        import dataclasses

        sim_ok = small_setup(seed=44)
        sim_ok.run()
        received_ok = sum(n.messages_received for n in sim_ok.nodes.values())

        sim_lossy = small_setup(seed=44)
        sim_lossy.config.gossip_loss = 0.5
        # Rebuild to pick up the config change cleanly.
        sim_lossy = small_setup(seed=44)
        sim_lossy.config.gossip_loss = 0.5
        sim_lossy.run()
        received_lossy = sum(n.messages_received for n in sim_lossy.nodes.values())
        sent_lossy = sum(n.messages_sent for n in sim_lossy.nodes.values())
        assert received_lossy < received_ok
        assert received_lossy < sent_lossy  # some messages actually lost

    def test_system_survives_heavy_loss(self):
        sim = small_setup(seed=44)
        sim.config.gossip_loss = 0.9
        stats = sim.run()
        # Data still disseminates and reputations still separate by role.
        assert stats.downloaded.sum() > 0
        snap = sim.system_reputation_snapshot()
        sharer_mean = np.mean([snap[p] for p in sim.roles.sharers])
        freerider_mean = np.mean([snap[p] for p in sim.roles.freeriders])
        assert sharer_mean >= freerider_mean

    def test_gossip_loss_validation(self):
        cfg = BitTorrentConfig(gossip_loss=1.0)
        with pytest.raises(ValueError):
            cfg.validate()
        cfg = BitTorrentConfig(gossip_loss=-0.1)
        with pytest.raises(ValueError):
            cfg.validate()
