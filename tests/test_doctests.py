"""Run the package's embedded doctests as part of the suite."""

import doctest

import pytest

import repro.core.reputation
import repro.graph.transfer_graph
import repro.sim.engine
import repro.sim.rng
import repro.traces.synthetic

MODULES = [
    repro.sim.engine,
    repro.sim.rng,
    repro.graph.transfer_graph,
    repro.core.reputation,
    repro.traces.synthetic,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    # Every module in this list is expected to actually carry examples.
    assert results.attempted > 0
